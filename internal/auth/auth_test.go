package auth

import (
	"errors"
	"testing"
	"testing/quick"
)

func newAuths(t *testing.T, n int, seed uint64) []*Authenticator {
	t.Helper()
	d := NewDealer(n, seed)
	out := make([]*Authenticator, n)
	for i := 0; i < n; i++ {
		a, err := d.Authenticator(id(i))
		if err != nil {
			t.Fatalf("Authenticator(%d): %v", i, err)
		}
		out[i] = a
	}
	return out
}

func id(i int) int { return i }

func TestSignVerifyAllPairs(t *testing.T) {
	auths := newAuths(t, 5, 1)
	msg := []byte("round 3: commit digest 0xabc")
	for i, signer := range auths {
		tv := signer.Sign(msg)
		for j, verifier := range auths {
			if err := verifier.Verify(i, msg, tv); err != nil {
				t.Errorf("verifier %d rejects signer %d: %v", j, i, err)
			}
		}
	}
}

func TestVerifyRejectsWrongSigner(t *testing.T) {
	auths := newAuths(t, 4, 2)
	msg := []byte("m")
	tv := auths[0].Sign(msg)
	if err := auths[1].Verify(2, msg, tv); !errors.Is(err, ErrBadTag) {
		t.Fatalf("claimed wrong signer: err = %v, want ErrBadTag", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	auths := newAuths(t, 4, 3)
	tv := auths[0].Sign([]byte("original"))
	if err := auths[1].Verify(0, []byte("tampered"), tv); !errors.Is(err, ErrBadTag) {
		t.Fatalf("tampered msg: err = %v, want ErrBadTag", err)
	}
}

func TestVerifyRejectsForgedTagVector(t *testing.T) {
	auths := newAuths(t, 4, 4)
	msg := []byte("m")
	// Byzantine processor 3 tries to forge a vector as signer 0.
	forged := auths[3].Sign(msg) // signed with 3's keys, claimed as 0's
	if err := auths[1].Verify(0, msg, forged); !errors.Is(err, ErrBadTag) {
		t.Fatalf("forged vector accepted: err = %v", err)
	}
}

func TestVerifyRejectsShortVector(t *testing.T) {
	auths := newAuths(t, 4, 5)
	msg := []byte("m")
	tv := auths[0].Sign(msg)
	if err := auths[1].Verify(0, msg, tv[:2]); !errors.Is(err, ErrBadTag) {
		t.Fatalf("short vector accepted: err = %v", err)
	}
}

func TestUnknownPeerErrors(t *testing.T) {
	d := NewDealer(3, 6)
	if _, err := d.Authenticator(7); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("Authenticator(7): err = %v, want ErrUnknownPeer", err)
	}
	auths := newAuths(t, 3, 6)
	if _, err := auths[0].SignFor(9, []byte("m")); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("SignFor(9): err = %v, want ErrUnknownPeer", err)
	}
	if err := auths[0].Verify(-1, []byte("m"), make(TagVector, 3)); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("Verify(-1): err = %v, want ErrUnknownPeer", err)
	}
}

func TestVerifyOne(t *testing.T) {
	auths := newAuths(t, 3, 7)
	msg := []byte("p2p")
	tag, err := auths[0].SignFor(2, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := auths[2].VerifyOne(0, msg, tag); err != nil {
		t.Fatalf("VerifyOne valid tag: %v", err)
	}
	if err := auths[1].VerifyOne(0, msg, tag); !errors.Is(err, ErrBadTag) {
		t.Fatalf("tag for 2 accepted by 1: err = %v", err)
	}
}

func TestDealerDeterministic(t *testing.T) {
	a1 := NewDealer(4, 42)
	a2 := NewDealer(4, 42)
	auth1, _ := a1.Authenticator(1)
	auth2, _ := a2.Authenticator(1)
	msg := []byte("m")
	tv1, tv2 := auth1.Sign(msg), auth2.Sign(msg)
	for i := range tv1 {
		if tv1[i] != tv2[i] {
			t.Fatal("dealer not deterministic for fixed seed")
		}
	}
	b := NewDealer(4, 43)
	authB, _ := b.Authenticator(1)
	if authB.Sign(msg)[0] == tv1[0] {
		t.Fatal("different seeds produced identical tags")
	}
}

func TestQuickSignVerify(t *testing.T) {
	d := NewDealer(5, 99)
	auths := make([]*Authenticator, 5)
	for i := range auths {
		auths[i], _ = d.Authenticator(i)
	}
	f := func(msg []byte, signerRaw, verifierRaw uint8) bool {
		signer := int(signerRaw) % 5
		verifier := int(verifierRaw) % 5
		tv := auths[signer].Sign(msg)
		return auths[verifier].Verify(signer, msg, tv) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSignVector(b *testing.B) {
	d := NewDealer(10, 1)
	a, _ := d.Authenticator(0)
	msg := []byte("benchmark message payload")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Sign(msg)
	}
}

func BenchmarkVerify(b *testing.B) {
	d := NewDealer(10, 1)
	s, _ := d.Authenticator(0)
	v, _ := d.Authenticator(1)
	msg := []byte("benchmark message payload")
	tv := s.Sign(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.Verify(0, msg, tv); err != nil {
			b.Fatal(err)
		}
	}
}
