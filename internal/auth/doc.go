// Package auth provides message authentication for the Byzantine protocols.
//
// The paper's footnote 2 assumes authenticated channels ("authentication
// utilizes a Byzantine agreement that needs only a majority"). Real systems
// would use transferable digital signatures; this simulation substitutes
// pairwise HMAC-SHA256 tags dealt by a trusted setup (see DESIGN.md §4).
// For transferable authentication — needed by Dolev–Strong style relaying —
// a signer produces a *vector* of tags, one per potential verifier, so any
// processor can check the component addressed to it while Byzantine
// processors cannot forge tags for keys they do not hold.
package auth
