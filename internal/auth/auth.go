package auth

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"gameauthority/internal/prng"
)

// TagSize is the size in bytes of a single HMAC tag.
const TagSize = sha256.Size

// Sentinel errors.
var (
	ErrBadTag      = errors.New("auth: tag verification failed")
	ErrUnknownPeer = errors.New("auth: unknown peer id")
)

// Tag is a single authenticator over a message.
type Tag [TagSize]byte

// TagVector carries one tag per processor so that any of the n processors
// can verify the (claimed) signer. Index i is the tag verifiable by
// processor i.
type TagVector []Tag

// Dealer generates the pairwise-key material during trusted setup and hands
// each processor its Authenticator. Keys are derived deterministically from
// a seed so whole experiments are replayable.
type Dealer struct {
	n    int
	keys [][]byte // keys[i*n+j]: key shared between signer i and verifier j
}

// NewDealer creates key material for n processors from the given seed.
func NewDealer(n int, seed uint64) *Dealer {
	d := &Dealer{n: n, keys: make([][]byte, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			src := prng.Derive(seed, 0xA0711, uint64(i), uint64(j))
			key := make([]byte, 32)
			for k := 0; k < 32; k += 8 {
				binary.LittleEndian.PutUint64(key[k:], src.Uint64())
			}
			d.keys[i*n+j] = key
		}
	}
	return d
}

// N returns the number of processors provisioned.
func (d *Dealer) N() int { return d.n }

// Authenticator returns processor id's view of the key material: it can sign
// as id (producing tags every peer can verify) and verify any peer's tags
// addressed to id.
func (d *Dealer) Authenticator(id int) (*Authenticator, error) {
	if id < 0 || id >= d.n {
		return nil, fmt.Errorf("%w: %d", ErrUnknownPeer, id)
	}
	a := &Authenticator{id: id, n: d.n}
	a.signKeys = make([][]byte, d.n)
	a.verifyKeys = make([][]byte, d.n)
	for j := 0; j < d.n; j++ {
		a.signKeys[j] = d.keys[id*d.n+j]   // sign as id, verifiable by j
		a.verifyKeys[j] = d.keys[j*d.n+id] // verify j's tags addressed to id
	}
	return a, nil
}

// Authenticator is one processor's signing/verification handle.
type Authenticator struct {
	id         int
	n          int
	signKeys   [][]byte
	verifyKeys [][]byte
}

// ID returns the processor id this authenticator belongs to.
func (a *Authenticator) ID() int { return a.id }

// N returns the number of processors in the system.
func (a *Authenticator) N() int { return a.n }

// SignFor produces the tag over msg that verifier can check.
func (a *Authenticator) SignFor(verifier int, msg []byte) (Tag, error) {
	var t Tag
	if verifier < 0 || verifier >= a.n {
		return t, fmt.Errorf("%w: %d", ErrUnknownPeer, verifier)
	}
	mac := hmac.New(sha256.New, a.signKeys[verifier])
	mac.Write(msg)
	copy(t[:], mac.Sum(nil))
	return t, nil
}

// Sign produces a full tag vector over msg (one tag per processor), giving
// the message transferable authentication within the simulation.
func (a *Authenticator) Sign(msg []byte) TagVector {
	tv := make(TagVector, a.n)
	for j := 0; j < a.n; j++ {
		t, _ := a.SignFor(j, msg) // j is always in range here
		tv[j] = t
	}
	return tv
}

// Verify checks that signer produced the component of tv addressed to this
// processor over msg.
func (a *Authenticator) Verify(signer int, msg []byte, tv TagVector) error {
	if signer < 0 || signer >= a.n {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, signer)
	}
	if len(tv) != a.n {
		return fmt.Errorf("%w: tag vector has %d entries, want %d", ErrBadTag, len(tv), a.n)
	}
	mac := hmac.New(sha256.New, a.verifyKeys[signer])
	mac.Write(msg)
	var want Tag
	copy(want[:], mac.Sum(nil))
	if !hmac.Equal(want[:], tv[a.id][:]) {
		return ErrBadTag
	}
	return nil
}

// VerifyOne checks a single tag (no vector) from signer addressed to this
// processor. Used on direct point-to-point messages.
func (a *Authenticator) VerifyOne(signer int, msg []byte, t Tag) error {
	if signer < 0 || signer >= a.n {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, signer)
	}
	mac := hmac.New(sha256.New, a.verifyKeys[signer])
	mac.Write(msg)
	var want Tag
	copy(want[:], mac.Sum(nil))
	if !hmac.Equal(want[:], t[:]) {
		return ErrBadTag
	}
	return nil
}
