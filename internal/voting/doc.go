// Package voting implements the legislative service's decision mechanism
// (paper §3.1): the agents "set up the rules of the game in a democratic
// manner, e.g., robust voting [14]". It provides standard tally rules
// (plurality, Borda, approval, Condorcet/Copeland) with deterministic
// tie-breaking, plus a commit-reveal election that prevents a manipulator
// from conditioning its ballot on the other ballots — the property the
// hybrid protocols of Elkind–Lipmaa [14] provide cryptographically (see
// DESIGN.md §4 for the substitution note).
package voting
