package voting

import (
	"errors"
	"testing"

	"gameauthority/internal/commit"
	"gameauthority/internal/prng"
)

func TestRuleString(t *testing.T) {
	for _, r := range []Rule{Plurality, Borda, Approval, Condorcet} {
		if r.String() == "" {
			t.Fatalf("rule %d has empty name", r)
		}
	}
	if Rule(0).String() != "rule(0)" {
		t.Fatal("zero rule should stringify as unknown")
	}
}

func TestValidateBallot(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
		b    Ballot
		ok   bool
	}{
		{"plurality ok", Plurality, Ballot{Ranking: []int{2}}, true},
		{"plurality empty", Plurality, Ballot{}, false},
		{"plurality range", Plurality, Ballot{Ranking: []int{5}}, false},
		{"borda ok", Borda, Ballot{Ranking: []int{2, 0, 1}}, true},
		{"borda short", Borda, Ballot{Ranking: []int{2, 0}}, false},
		{"borda dup", Borda, Ballot{Ranking: []int{2, 2, 1}}, false},
		{"approval ok", Approval, Ballot{Approved: []int{0, 2}}, true},
		{"approval empty ok", Approval, Ballot{}, true},
		{"approval dup", Approval, Ballot{Approved: []int{1, 1}}, false},
		{"condorcet ok", Condorcet, Ballot{Ranking: []int{0, 1, 2}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateBallot(tc.rule, tc.b, 3)
			if tc.ok && err != nil {
				t.Fatalf("err = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("want error")
			}
		})
	}
	if err := ValidateBallot(Rule(99), Ballot{}, 3); !errors.Is(err, ErrBadRule) {
		t.Fatalf("unknown rule: %v", err)
	}
}

func TestTallyPlurality(t *testing.T) {
	ballots := []Ballot{
		{Ranking: []int{0}}, {Ranking: []int{1}}, {Ranking: []int{1}},
		{Ranking: []int{9}}, // invalid
	}
	w, scores, invalid, err := Tally(Plurality, ballots, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 || scores[1] != 2 {
		t.Fatalf("winner=%d scores=%v", w, scores)
	}
	if len(invalid) != 1 || invalid[0] != 3 {
		t.Fatalf("invalid = %v, want [3]", invalid)
	}
}

func TestTallyPluralityTieBreaksLow(t *testing.T) {
	ballots := []Ballot{{Ranking: []int{2}}, {Ranking: []int{0}}}
	w, _, _, err := Tally(Plurality, ballots, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0 {
		t.Fatalf("tie should break to candidate 0, got %d", w)
	}
}

func TestTallyBorda(t *testing.T) {
	// 2 voters: [0,1,2] gives 0:2,1:1,2:0; [1,0,2] gives 1:2,0:1,2:0.
	ballots := []Ballot{{Ranking: []int{0, 1, 2}}, {Ranking: []int{1, 0, 2}}}
	w, scores, _, err := Tally(Borda, ballots, 3)
	if err != nil {
		t.Fatal(err)
	}
	if scores[0] != 3 || scores[1] != 3 || scores[2] != 0 {
		t.Fatalf("borda scores = %v", scores)
	}
	if w != 0 { // tie 0 vs 1 → low index
		t.Fatalf("winner = %d, want 0", w)
	}
}

func TestTallyApproval(t *testing.T) {
	ballots := []Ballot{{Approved: []int{0, 1}}, {Approved: []int{1}}, {Approved: []int{2}}}
	w, scores, _, err := Tally(Approval, ballots, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 || scores[1] != 2 {
		t.Fatalf("approval winner=%d scores=%v", w, scores)
	}
}

func TestTallyCondorcet(t *testing.T) {
	// Candidate 1 beats 0 and 2 pairwise.
	ballots := []Ballot{
		{Ranking: []int{1, 0, 2}},
		{Ranking: []int{1, 2, 0}},
		{Ranking: []int{0, 1, 2}},
	}
	w, scores, _, err := Tally(Condorcet, ballots, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 {
		t.Fatalf("condorcet winner = %d (scores %v), want 1", w, scores)
	}
	if scores[1] != 2 {
		t.Fatalf("copeland score of winner = %v, want 2", scores[1])
	}
}

func TestTallyErrors(t *testing.T) {
	if _, _, _, err := Tally(Plurality, nil, 0); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("no candidates: %v", err)
	}
	if _, _, _, err := Tally(Rule(42), nil, 2); !errors.Is(err, ErrBadRule) {
		t.Fatalf("bad rule: %v", err)
	}
}

func TestBallotEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Ballot{
		{},
		{Ranking: []int{2, 0, 1}},
		{Approved: []int{1, 3}},
		{Ranking: []int{0}, Approved: []int{0, 1, 2}},
	}
	for _, b := range cases {
		got, err := DecodeBallot(EncodeBallot(b))
		if err != nil {
			t.Fatalf("decode(%v): %v", b, err)
		}
		if len(got.Ranking) != len(b.Ranking) || len(got.Approved) != len(b.Approved) {
			t.Fatalf("round trip mismatch: %v vs %v", got, b)
		}
		for i := range b.Ranking {
			if got.Ranking[i] != b.Ranking[i] {
				t.Fatalf("ranking mismatch: %v vs %v", got, b)
			}
		}
		for i := range b.Approved {
			if got.Approved[i] != b.Approved[i] {
				t.Fatalf("approved mismatch: %v vs %v", got, b)
			}
		}
	}
	if _, err := DecodeBallot(nil); !errors.Is(err, ErrBadBallot) {
		t.Fatalf("nil decode: %v", err)
	}
	if _, err := DecodeBallot([]byte{5, 1}); !errors.Is(err, ErrBadBallot) {
		t.Fatalf("truncated decode: %v", err)
	}
}

func TestElectionHappyPath(t *testing.T) {
	e, err := NewElection(Plurality, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := prng.New(1)
	ballots := []Ballot{{Ranking: []int{1}}, {Ranking: []int{1}}, {Ranking: []int{0}}}
	openings := make([]commit.Opening, 3)
	for i, b := range ballots {
		d, op := CommitBallot(src, b)
		openings[i] = op
		if err := e.SubmitCommit(i, d); err != nil {
			t.Fatal(err)
		}
	}
	e.CloseCommits()
	for i := range ballots {
		if err := e.SubmitReveal(i, openings[i]); err != nil {
			t.Fatal(err)
		}
	}
	w, scores, cheaters, err := e.Result()
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 || scores[1] != 2 || len(cheaters) != 0 {
		t.Fatalf("w=%d scores=%v cheaters=%v", w, scores, cheaters)
	}
}

func TestElectionDetectsAlteredReveal(t *testing.T) {
	e, err := NewElection(Plurality, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := prng.New(2)
	d0, op0 := CommitBallot(src, Ballot{Ranking: []int{0}})
	d1, _ := CommitBallot(src, Ballot{Ranking: []int{0}})
	if err := e.SubmitCommit(0, d0); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitCommit(1, d1); err != nil {
		t.Fatal(err)
	}
	e.CloseCommits()
	if err := e.SubmitReveal(0, op0); err != nil {
		t.Fatal(err)
	}
	// Voter 1 tries to reveal a different ballot than committed.
	forged := commit.Opening{Value: EncodeBallot(Ballot{Ranking: []int{1}})}
	if err := e.SubmitReveal(1, forged); err != nil {
		t.Fatal(err) // recorded as cheat, not an API error
	}
	w, _, cheaters, err := e.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(cheaters) != 1 || cheaters[0] != 1 {
		t.Fatalf("cheaters = %v, want [1]", cheaters)
	}
	if w != 0 {
		t.Fatalf("winner = %d; forged ballot must not count", w)
	}
}

func TestElectionSilentRevealerIsCheater(t *testing.T) {
	e, _ := NewElection(Plurality, 2, 2)
	src := prng.New(3)
	d0, op0 := CommitBallot(src, Ballot{Ranking: []int{0}})
	d1, _ := CommitBallot(src, Ballot{Ranking: []int{1}})
	if err := e.SubmitCommit(0, d0); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitCommit(1, d1); err != nil {
		t.Fatal(err)
	}
	e.CloseCommits()
	if err := e.SubmitReveal(0, op0); err != nil {
		t.Fatal(err)
	}
	// Voter 1 never reveals (withholds after seeing the tide turn).
	_, _, cheaters, err := e.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(cheaters) != 1 || cheaters[0] != 1 {
		t.Fatalf("cheaters = %v, want [1]", cheaters)
	}
}

func TestElectionPhaseEnforcement(t *testing.T) {
	e, _ := NewElection(Plurality, 2, 2)
	src := prng.New(4)
	d, op := CommitBallot(src, Ballot{Ranking: []int{0}})
	if err := e.SubmitReveal(0, op); err == nil {
		t.Fatal("reveal accepted during commit phase")
	}
	if err := e.SubmitCommit(0, d); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitCommit(0, d); err == nil {
		t.Fatal("double commit accepted")
	}
	e.CloseCommits()
	if err := e.SubmitCommit(1, d); err == nil {
		t.Fatal("commit accepted after close")
	}
	if err := e.SubmitReveal(0, op); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitReveal(0, op); err == nil {
		t.Fatal("double reveal accepted")
	}
}

func TestNewElectionValidation(t *testing.T) {
	if _, err := NewElection(Plurality, 3, 0); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("0 candidates: %v", err)
	}
	if _, err := NewElection(Rule(9), 3, 2); !errors.Is(err, ErrBadRule) {
		t.Fatalf("bad rule: %v", err)
	}
	if _, err := NewElection(Plurality, 0, 2); err == nil {
		t.Fatal("0 voters accepted")
	}
}

func TestBestStrategicBallotSwingsNaiveElection(t *testing.T) {
	// Others: candidate 0 has 2 votes, candidate 1 has 2 votes.
	// Manipulator prefers 1: its vote decides.
	others := []Ballot{
		{Ranking: []int{0}}, {Ranking: []int{0}},
		{Ranking: []int{1}}, {Ranking: []int{1}},
	}
	b := BestStrategicBallot(others, []int{1, 0}, 2)
	trial := append(append([]Ballot(nil), others...), b)
	w, _, _, err := Tally(Plurality, trial, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 {
		t.Fatalf("manipulator failed to elect its preference: winner %d", w)
	}
}

func TestBestStrategicBallotSettlesForAchievable(t *testing.T) {
	// Candidate 0 leads by 3; the manipulator cannot elect 1 and settles
	// for the best achievable outcome on its preference list (0).
	others := []Ballot{{Ranking: []int{0}}, {Ranking: []int{0}}, {Ranking: []int{0}}}
	b := BestStrategicBallot(others, []int{1, 0}, 2)
	if b.Ranking[0] != 0 {
		t.Fatalf("ballot = %v, want settle on achievable candidate 0", b)
	}
	if got := BestStrategicBallot(nil, nil, 2); got.Ranking[0] != 0 {
		t.Fatalf("empty prefs fallback = %v", got)
	}
}
