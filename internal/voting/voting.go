package voting

import (
	"errors"
	"fmt"

	"gameauthority/internal/commit"
	"gameauthority/internal/prng"
)

// Rule selects the tally method.
type Rule int

// Supported tally rules. Values start at 1 so the zero value is invalid by
// construction.
const (
	Plurality Rule = iota + 1
	Borda
	Approval
	Condorcet
)

// String implements fmt.Stringer.
func (r Rule) String() string {
	switch r {
	case Plurality:
		return "plurality"
	case Borda:
		return "borda"
	case Approval:
		return "approval"
	case Condorcet:
		return "condorcet"
	default:
		return fmt.Sprintf("rule(%d)", int(r))
	}
}

// Errors returned by tallies and elections.
var (
	ErrBadBallot    = errors.New("voting: malformed ballot")
	ErrBadRule      = errors.New("voting: unknown rule")
	ErrNoCandidates = errors.New("voting: no candidates")
)

// Ballot is one voter's input. For Plurality only Ranking[0] matters; for
// Borda and Condorcet the full ranking is used; for Approval the Approved
// set is used.
type Ballot struct {
	// Ranking lists candidate indices from most to least preferred.
	Ranking []int
	// Approved lists approved candidate indices (Approval rule only).
	Approved []int
}

// ValidateBallot checks the ballot against the rule and candidate count.
func ValidateBallot(rule Rule, b Ballot, numCandidates int) error {
	switch rule {
	case Plurality:
		if len(b.Ranking) < 1 {
			return fmt.Errorf("%w: plurality needs a first choice", ErrBadBallot)
		}
		if b.Ranking[0] < 0 || b.Ranking[0] >= numCandidates {
			return fmt.Errorf("%w: first choice %d out of range", ErrBadBallot, b.Ranking[0])
		}
		return nil
	case Borda, Condorcet:
		if len(b.Ranking) != numCandidates {
			return fmt.Errorf("%w: ranking has %d entries, want %d", ErrBadBallot, len(b.Ranking), numCandidates)
		}
		seen := make([]bool, numCandidates)
		for _, c := range b.Ranking {
			if c < 0 || c >= numCandidates || seen[c] {
				return fmt.Errorf("%w: ranking %v is not a permutation", ErrBadBallot, b.Ranking)
			}
			seen[c] = true
		}
		return nil
	case Approval:
		seen := make([]bool, numCandidates)
		for _, c := range b.Approved {
			if c < 0 || c >= numCandidates || seen[c] {
				return fmt.Errorf("%w: approved set %v invalid", ErrBadBallot, b.Approved)
			}
			seen[c] = true
		}
		return nil
	default:
		return ErrBadRule
	}
}

// Tally computes per-candidate scores and the winner under the rule.
// Invalid ballots are skipped (and their indices reported) — the judicial
// flavour: bad ballots are evidence, not crashes. Ties break toward the
// lowest candidate index, deterministically.
func Tally(rule Rule, ballots []Ballot, numCandidates int) (winner int, scores []float64, invalid []int, err error) {
	if numCandidates < 1 {
		return 0, nil, nil, ErrNoCandidates
	}
	scores = make([]float64, numCandidates)
	switch rule {
	case Plurality:
		for i, b := range ballots {
			if ValidateBallot(rule, b, numCandidates) != nil {
				invalid = append(invalid, i)
				continue
			}
			scores[b.Ranking[0]]++
		}
	case Borda:
		for i, b := range ballots {
			if ValidateBallot(rule, b, numCandidates) != nil {
				invalid = append(invalid, i)
				continue
			}
			for pos, c := range b.Ranking {
				scores[c] += float64(numCandidates - 1 - pos)
			}
		}
	case Approval:
		for i, b := range ballots {
			if ValidateBallot(rule, b, numCandidates) != nil {
				invalid = append(invalid, i)
				continue
			}
			for _, c := range b.Approved {
				scores[c]++
			}
		}
	case Condorcet:
		// Copeland scores: +1 per pairwise victory, +0.5 per pairwise tie.
		wins := make([][]int, numCandidates)
		for i := range wins {
			wins[i] = make([]int, numCandidates)
		}
		for i, b := range ballots {
			if ValidateBallot(rule, b, numCandidates) != nil {
				invalid = append(invalid, i)
				continue
			}
			pos := make([]int, numCandidates)
			for p, c := range b.Ranking {
				pos[c] = p
			}
			for a := 0; a < numCandidates; a++ {
				for c := a + 1; c < numCandidates; c++ {
					if pos[a] < pos[c] {
						wins[a][c]++
					} else {
						wins[c][a]++
					}
				}
			}
		}
		for a := 0; a < numCandidates; a++ {
			for c := 0; c < numCandidates; c++ {
				if a == c {
					continue
				}
				switch {
				case wins[a][c] > wins[c][a]:
					scores[a]++
				case wins[a][c] == wins[c][a]:
					scores[a] += 0.5
				}
			}
		}
	default:
		return 0, nil, nil, ErrBadRule
	}
	winner = 0
	for c := 1; c < numCandidates; c++ {
		if scores[c] > scores[winner] {
			winner = c
		}
	}
	return winner, scores, invalid, nil
}

// --- Robust (commit-reveal) election -------------------------------------

// Election runs a two-phase commit-reveal vote. Phase 1 collects ballot
// commitments; once all commitments are in (in the full middleware they are
// agreed via Byzantine agreement), phase 2 collects openings. A voter whose
// opening does not match its commitment — or who never reveals — is
// excluded and reported, so no voter can adapt its ballot to the others'.
type Election struct {
	rule    Rule
	numCand int
	n       int

	commits   []commit.Digest
	hasCommit []bool
	ballots   []Ballot
	revealed  []bool
	cheaters  []int
	phase     int // 1 = committing, 2 = revealing, 3 = closed
}

// NewElection creates an election for n voters over numCandidates.
func NewElection(rule Rule, n, numCandidates int) (*Election, error) {
	if numCandidates < 1 {
		return nil, ErrNoCandidates
	}
	if rule < Plurality || rule > Condorcet {
		return nil, ErrBadRule
	}
	if n < 1 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadBallot, n)
	}
	return &Election{
		rule: rule, numCand: numCandidates, n: n,
		commits:   make([]commit.Digest, n),
		hasCommit: make([]bool, n),
		ballots:   make([]Ballot, n),
		revealed:  make([]bool, n),
		phase:     1,
	}, nil
}

// EncodeBallot serializes a ballot canonically for commitment.
func EncodeBallot(b Ballot) []byte {
	out := []byte{byte(len(b.Ranking))}
	for _, c := range b.Ranking {
		out = append(out, byte(c))
	}
	out = append(out, byte(len(b.Approved)))
	for _, c := range b.Approved {
		out = append(out, byte(c))
	}
	return out
}

// DecodeBallot parses EncodeBallot's output.
func DecodeBallot(data []byte) (Ballot, error) {
	var b Ballot
	if len(data) < 1 {
		return b, ErrBadBallot
	}
	nr := int(data[0])
	data = data[1:]
	if len(data) < nr+1 {
		return b, ErrBadBallot
	}
	for i := 0; i < nr; i++ {
		b.Ranking = append(b.Ranking, int(data[i]))
	}
	data = data[nr:]
	na := int(data[0])
	data = data[1:]
	if len(data) != na {
		return b, ErrBadBallot
	}
	for i := 0; i < na; i++ {
		b.Approved = append(b.Approved, int(data[i]))
	}
	return b, nil
}

// CommitBallot creates a voter's commitment using its private randomness.
// Returns the opening the voter must retain for the reveal phase.
func CommitBallot(src *prng.Source, b Ballot) (commit.Digest, commit.Opening) {
	return commit.Commit(src, EncodeBallot(b))
}

// SubmitCommit registers voter id's ballot commitment (phase 1).
func (e *Election) SubmitCommit(id int, d commit.Digest) error {
	if e.phase != 1 {
		return fmt.Errorf("%w: commit in phase %d", ErrBadBallot, e.phase)
	}
	if id < 0 || id >= e.n {
		return fmt.Errorf("%w: voter %d", ErrBadBallot, id)
	}
	if e.hasCommit[id] {
		return fmt.Errorf("%w: voter %d committed twice", ErrBadBallot, id)
	}
	e.commits[id] = d
	e.hasCommit[id] = true
	return nil
}

// CloseCommits moves to the reveal phase. Voters that never committed are
// simply absent (abstentions).
func (e *Election) CloseCommits() { e.phase = 2 }

// SubmitReveal registers voter id's opening (phase 2). A mismatching
// opening marks the voter as a cheater and discards the ballot.
func (e *Election) SubmitReveal(id int, op commit.Opening) error {
	if e.phase != 2 {
		return fmt.Errorf("%w: reveal in phase %d", ErrBadBallot, e.phase)
	}
	if id < 0 || id >= e.n || !e.hasCommit[id] {
		return fmt.Errorf("%w: voter %d has no commitment", ErrBadBallot, id)
	}
	if e.revealed[id] {
		return fmt.Errorf("%w: voter %d revealed twice", ErrBadBallot, id)
	}
	if err := commit.Verify(e.commits[id], op); err != nil {
		e.cheaters = append(e.cheaters, id)
		e.revealed[id] = true
		return nil // recorded as foul play, not an API error
	}
	b, err := DecodeBallot(op.Value)
	if err != nil {
		e.cheaters = append(e.cheaters, id)
		e.revealed[id] = true
		return nil
	}
	e.ballots[id] = b
	e.revealed[id] = true
	return nil
}

// Result closes the election and tallies the valid revealed ballots.
// Cheaters lists voters whose reveal failed verification; silent voters
// (committed but never revealed) are also cheaters — withholding a reveal
// after seeing others' ballots is the classic manipulation.
func (e *Election) Result() (winner int, scores []float64, cheaters []int, err error) {
	e.phase = 3
	var valid []Ballot
	cheaters = append(cheaters, e.cheaters...)
	seen := make(map[int]bool, len(cheaters))
	for _, c := range cheaters {
		seen[c] = true
	}
	for id := 0; id < e.n; id++ {
		if !e.hasCommit[id] {
			continue // abstained before commitments closed: allowed
		}
		if !e.revealed[id] {
			if !seen[id] {
				cheaters = append(cheaters, id)
			}
			continue
		}
		if seen[id] {
			continue
		}
		valid = append(valid, e.ballots[id])
	}
	winner, scores, _, err = Tally(e.rule, valid, e.numCand)
	return winner, scores, cheaters, err
}

// --- Manipulation modelling ----------------------------------------------

// BestStrategicBallot returns the plurality ballot a manipulator should
// cast, given full knowledge of the other ballots, to elect the candidate
// it prefers most among those it can make win. prefs ranks the
// manipulator's candidates (most preferred first). This models the §3.1
// threat: in a naive (open, sequential) election the last voter can always
// play this; commit-reveal forecloses it.
func BestStrategicBallot(others []Ballot, prefs []int, numCandidates int) Ballot {
	for _, want := range prefs {
		trial := append(append([]Ballot(nil), others...), Ballot{Ranking: []int{want}})
		w, _, _, err := Tally(Plurality, trial, numCandidates)
		if err == nil && w == want {
			return Ballot{Ranking: []int{want}}
		}
	}
	// Cannot change the outcome: vote sincerely.
	if len(prefs) > 0 {
		return Ballot{Ranking: []int{prefs[0]}}
	}
	return Ballot{Ranking: []int{0}}
}
