package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// backends builds one fresh store per backend for table-driven tests.
func backends(t *testing.T) map[string]Store {
	t.Helper()
	file, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { file.Close() })
	mem := NewMem()
	t.Cleanup(func() { mem.Close() })
	return map[string]Store{"mem": mem, "file": file}
}

func TestStoreRoundTrip(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := st.CreateSession("s-1", []byte(`{"game":"pd"}`)); err != nil {
				t.Fatal(err)
			}
			if err := st.CreateSession("s-1", nil); !errors.Is(err, ErrSessionExists) {
				t.Fatalf("duplicate create: err = %v, want ErrSessionExists", err)
			}
			if err := st.Append("nope", Record{Type: RecordPlay}); !errors.Is(err, ErrUnknownSession) {
				t.Fatalf("append to unknown session: err = %v, want ErrUnknownSession", err)
			}
			for r := 0; r < 5; r++ {
				rec := Record{Type: RecordPlay, Round: r, Hash: fmt.Sprintf("h%d", r)}
				if r == 3 {
					rec.Fouls = 1
					rec.Convicted = []int{0}
				}
				if err := st.Append("s-1", rec); err != nil {
					t.Fatal(err)
				}
			}
			states, err := st.Load()
			if err != nil {
				t.Fatal(err)
			}
			if len(states) != 1 {
				t.Fatalf("loaded %d sessions, want 1", len(states))
			}
			s := states[0]
			if s.ID != "s-1" || string(s.Spec) != `{"game":"pd"}` {
				t.Fatalf("bad state: %+v", s)
			}
			if len(s.Tail) != 5 || s.Tail[3].Fouls != 1 || len(s.Tail[3].Convicted) != 1 {
				t.Fatalf("bad tail: %+v", s.Tail)
			}
			if s.Closed || s.SnapshotRounds != 0 || s.Snapshot != nil {
				t.Fatalf("unexpected snapshot/close state: %+v", s)
			}
		})
	}
}

func TestStoreSnapshotCompaction(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := st.CreateSession("c", []byte(`{}`)); err != nil {
				t.Fatal(err)
			}
			for r := 0; r < 6; r++ {
				if err := st.Append("c", Record{Type: RecordPlay, Round: r, Hash: fmt.Sprintf("h%d", r)}); err != nil {
					t.Fatal(err)
				}
			}
			// Snapshot covering rounds [0,4): plays 0-3 compact away; plays
			// 4-5 survive as the tail.
			if err := st.PutSnapshot("c", 4, []byte(`{"rounds":4}`)); err != nil {
				t.Fatal(err)
			}
			states, err := st.Load()
			if err != nil {
				t.Fatal(err)
			}
			s := states[0]
			if s.SnapshotRounds != 4 || string(s.Snapshot) != `{"rounds":4}` {
				t.Fatalf("snapshot not persisted: %+v", s)
			}
			if len(s.Tail) != 2 || s.Tail[0].Round != 4 || s.Tail[1].Round != 5 {
				t.Fatalf("compaction kept wrong tail: %+v", s.Tail)
			}
			// A close record survives a later snapshot.
			if err := st.Append("c", Record{Type: RecordClose, Digest: "d"}); err != nil {
				t.Fatal(err)
			}
			if err := st.PutSnapshot("c", 6, []byte(`{"rounds":6}`)); err != nil {
				t.Fatal(err)
			}
			states, err = st.Load()
			if err != nil {
				t.Fatal(err)
			}
			s = states[0]
			if !s.Closed || s.CloseDigest != "d" {
				t.Fatalf("close record lost by compaction: %+v", s)
			}
			if len(s.Tail) != 1 || s.Tail[0].Type != RecordClose {
				t.Fatalf("tail after full compaction: %+v", s.Tail)
			}
			infos, err := st.Snapshots()
			if err != nil {
				t.Fatal(err)
			}
			if len(infos) != 1 || infos[0].ID != "c" || infos[0].Rounds != 6 {
				t.Fatalf("snapshot listing: %+v", infos)
			}
		})
	}
}

func TestStoreDelete(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := st.CreateSession("d", []byte(`{}`)); err != nil {
				t.Fatal(err)
			}
			if err := st.Append("d", Record{Type: RecordPlay, Round: 0, Hash: "h"}); err != nil {
				t.Fatal(err)
			}
			if err := st.PutSnapshot("d", 1, []byte(`{}`)); err != nil {
				t.Fatal(err)
			}
			if err := st.Delete("d"); err != nil {
				t.Fatal(err)
			}
			states, err := st.Load()
			if err != nil {
				t.Fatal(err)
			}
			if len(states) != 0 {
				t.Fatalf("deleted session still loads: %+v", states)
			}
			// The id is reusable after deletion.
			if err := st.CreateSession("d", []byte(`{"v":2}`)); err != nil {
				t.Fatalf("recreate after delete: %v", err)
			}
		})
	}
}

func TestStoreClosedErrors(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := st.CreateSession("x", []byte(`{}`)); err != nil {
				t.Fatal(err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			if err := st.Close(); err != nil {
				t.Fatalf("second close: %v", err)
			}
			if err := st.Append("x", Record{Type: RecordPlay}); !errors.Is(err, ErrClosed) {
				t.Fatalf("append after close: err = %v, want ErrClosed", err)
			}
			if _, err := st.Load(); !errors.Is(err, ErrClosed) {
				t.Fatalf("load after close: err = %v, want ErrClosed", err)
			}
			if err := st.Sync(); !errors.Is(err, ErrClosed) {
				t.Fatalf("sync after close: err = %v, want ErrClosed", err)
			}
		})
	}
}

// TestFileTornTailTolerated simulates a crash mid-append: a half-written
// final WAL line must be dropped, not poison recovery.
func TestFileTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateSession("torn", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if err := st.Append("torn", Record{Type: RecordPlay, Round: r, Hash: "h"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "sessions", "torn.wal")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`0bad00 {"t":"play","rou`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	states, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || len(states[0].Tail) != 3 {
		t.Fatalf("torn tail not dropped cleanly: %+v", states)
	}
}

// TestFileAppendAfterTornTail is the dangerous half of the torn-tail
// story: after a crash leaves a half-written final line, the next append
// must land on a clean line boundary. Without repair, O_APPEND glues the
// new record onto the fragment — losing that acknowledged record and,
// once further valid records follow, turning the tolerable torn tail
// into the mid-file corruption that bricks Load and compaction forever.
func TestFileAppendAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateSession("torn", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if err := st.Append("torn", Record{Type: RecordPlay, Round: r, Hash: "h"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "sessions", "torn.wal")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`0bad00 {"t":"play","rou`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	// The post-recovery appends that used to glue onto the fragment.
	for r := 3; r < 5; r++ {
		if err := st2.Append("torn", Record{Type: RecordPlay, Round: r, Hash: "h"}); err != nil {
			t.Fatalf("append after torn tail: %v", err)
		}
	}
	states, err := st2.Load()
	if err != nil {
		t.Fatalf("load after post-crash appends: %v", err)
	}
	if len(states) != 1 || len(states[0].Tail) != 5 {
		t.Fatalf("post-crash appends corrupted the WAL: %+v", states)
	}
	for i, rec := range states[0].Tail {
		if rec.Round != i {
			t.Fatalf("tail[%d].Round = %d, want %d", i, rec.Round, i)
		}
	}
	// Compaction (the other reader that refuses mid-file corruption) works.
	if err := st2.PutSnapshot("torn", 4, []byte(`{"rounds":4}`)); err != nil {
		t.Fatalf("compaction after post-crash appends: %v", err)
	}
	state, ok, err := st2.LoadSession("torn")
	if err != nil || !ok {
		t.Fatalf("load after compaction: ok=%v err=%v", ok, err)
	}
	if len(state.Tail) != 1 || state.Tail[0].Round != 4 {
		t.Fatalf("compacted tail: %+v", state.Tail)
	}
}

// TestFileAppendAfterClippedNewline: a crash can clip just the trailing
// newline off a fully-written, CRC-valid record. That record was
// acknowledged and the read path accepts it, so resuming appends must
// complete the line — not truncate the record away, and not glue onto it.
func TestFileAppendAfterClippedNewline(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateSession("clip", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if err := st.Append("clip", Record{Type: RecordPlay, Round: r, Hash: "h"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "sessions", "clip.wal")
	info, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, info.Size()-1); err != nil { // drop only the final '\n'
		t.Fatal(err)
	}

	st2, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if err := st2.Append("clip", Record{Type: RecordPlay, Round: 3, Hash: "h"}); err != nil {
		t.Fatalf("append after clipped newline: %v", err)
	}
	states, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || len(states[0].Tail) != 4 {
		t.Fatalf("clipped-newline record lost or glued: %+v", states)
	}
	for i, rec := range states[0].Tail {
		if rec.Round != i {
			t.Fatalf("tail[%d].Round = %d, want %d", i, rec.Round, i)
		}
	}
}

// TestFileMidCorruptionRefused: corruption before valid records means lost
// acknowledged plays — Load must fail loudly instead of recovering a lie.
func TestFileMidCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateSession("mid", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if err := st.Append("mid", Record{Type: RecordPlay, Round: r, Hash: "h"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "sessions", "mid.wal")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record's JSON.
	i := strings.IndexByte(string(data), '{')
	data[i+5] ^= 0xFF
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.Load(); err == nil {
		t.Fatal("mid-file corruption loaded without error")
	}
}

// TestFileHandleEviction drives more sessions than the handle cache holds:
// appends must keep working through evict/reopen cycles.
func TestFileHandleEviction(t *testing.T) {
	st, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.max = 4
	const sessions = 16
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("s-%d", i)
		if err := st.CreateSession(id, []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("s-%d", i)
			for r := 0; r < 8; r++ {
				if err := st.Append(id, Record{Type: RecordPlay, Round: r, Hash: "h"}); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	states, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != sessions {
		t.Fatalf("loaded %d sessions, want %d", len(states), sessions)
	}
	for _, s := range states {
		if len(s.Tail) != 8 {
			t.Fatalf("session %s lost records through eviction: %d", s.ID, len(s.Tail))
		}
	}
}

// TestFileRejectsEscapingIDs pins the path-traversal defense.
func TestFileRejectsEscapingIDs(t *testing.T) {
	st, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, id := range []string{"", ".", "..", "a/b", `a\b`, strings.Repeat("x", 65)} {
		if err := st.CreateSession(id, nil); err == nil {
			t.Fatalf("id %q accepted", id)
		}
	}
}
