//go:build linux && (amd64 || arm64)

package store

import "syscall"

// syncFilesystem issues syncfs(2) on fd, flushing every dirty page and
// committing the journal of the filesystem that holds it — one barrier
// covering all session WALs at once, which is what lets a group-commit
// epoch cost one journal commit instead of one fsync per dirty session.
// ok is false when the kernel lacks the syscall; the caller falls back to
// per-handle fsyncs. The syscall number is arch-specific (the stdlib
// syscall table predates syncfs), so this path builds only where the
// number is pinned; elsewhere sync_other.go selects the fallback.
func syncFilesystem(fd uintptr) (ok bool, err error) {
	for {
		_, _, errno := syscall.Syscall(sysSyncfs, fd, 0, 0)
		switch errno {
		case 0:
			return true, nil
		case syscall.EINTR:
			continue
		case syscall.ENOSYS:
			return false, nil
		default:
			return true, errno
		}
	}
}
