// Package store is the authority's pluggable persistence subsystem: a
// per-session write-ahead log of plays, verdicts, and convictions plus
// periodically compacted snapshots, behind a backend-agnostic Store
// interface with in-memory and file implementations.
//
// The store is deliberately engine-agnostic: it journals opaque session
// specs, per-play transcript hashes, and opaque snapshot payloads — the
// core package's deterministic replay (core.Restore) turns them back into
// byte-identical live sessions. See DESIGN.md §9 for the durability model
// (WAL format, snapshot cadence, recovery ordering).
package store
