package store

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

func batchRec(first, n int) Record {
	plays := make([]BatchPlay, n)
	for i := range plays {
		plays[i] = BatchPlay{Round: first + i, Hash: fmt.Sprintf("h%d", first+i)}
	}
	return Record{Type: RecordBatch, Plays: plays}
}

func TestBatchRecordRoundTrip(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := st.CreateSession("b", []byte(`{}`)); err != nil {
				t.Fatal(err)
			}
			rec := batchRec(0, 3)
			rec.Plays[1].Fouls = 2
			rec.Plays[1].Convicted = []int{1, 3}
			if err := st.Append("b", rec); err != nil {
				t.Fatal(err)
			}
			// The store must have deep-copied: mutating the caller's
			// buffers after Append cannot reach the journal.
			rec.Plays[0].Hash = "clobbered"
			rec.Plays[1].Convicted[0] = 99
			if err := st.Append("b", Record{Type: RecordPlay, Round: 3, Hash: "h3"}); err != nil {
				t.Fatal(err)
			}
			states, err := st.Load()
			if err != nil {
				t.Fatal(err)
			}
			tail := states[0].Tail
			if len(tail) != 2 {
				t.Fatalf("tail has %d records, want 2: %+v", len(tail), tail)
			}
			got := tail[0]
			if got.Type != RecordBatch || len(got.Plays) != 3 {
				t.Fatalf("batch record mangled: %+v", got)
			}
			if got.Plays[0].Hash != "h0" {
				t.Fatalf("batch not isolated from caller mutation: %+v", got.Plays[0])
			}
			if got.Plays[1].Fouls != 2 || len(got.Plays[1].Convicted) != 2 || got.Plays[1].Convicted[0] != 1 {
				t.Fatalf("batch play fields lost: %+v", got.Plays[1])
			}
		})
	}
}

func TestRecordLastRound(t *testing.T) {
	cases := []struct {
		name string
		rec  Record
		want int
	}{
		{"play", Record{Type: RecordPlay, Round: 7}, 7},
		{"batch", batchRec(4, 3), 6},
		{"empty-batch", Record{Type: RecordBatch}, -1},
		{"close", Record{Type: RecordClose}, -1},
	}
	for _, tc := range cases {
		if got := tc.rec.LastRound(); got != tc.want {
			t.Errorf("%s: LastRound() = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestBatchCompaction pins the watermark rule for batch records: a batch
// compacts away only when the snapshot covers its *last* play. A batch
// straddling the watermark survives whole — replay starts from round
// zero anyway, so the already-covered prefix is harmless, while dropping
// it would lose the uncovered suffix.
func TestBatchCompaction(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := st.CreateSession("c", []byte(`{}`)); err != nil {
				t.Fatal(err)
			}
			if err := st.Append("c", batchRec(0, 4)); err != nil { // rounds 0-3: fully covered below
				t.Fatal(err)
			}
			if err := st.Append("c", batchRec(4, 4)); err != nil { // rounds 4-7: straddles the watermark
				t.Fatal(err)
			}
			if err := st.Append("c", batchRec(8, 2)); err != nil { // rounds 8-9: uncovered
				t.Fatal(err)
			}
			if err := st.PutSnapshot("c", 6, []byte(`{"rounds":6}`)); err != nil {
				t.Fatal(err)
			}
			states, err := st.Load()
			if err != nil {
				t.Fatal(err)
			}
			tail := states[0].Tail
			if len(tail) != 2 {
				t.Fatalf("tail has %d records, want 2 (straddler + uncovered): %+v", len(tail), tail)
			}
			if tail[0].LastRound() != 7 || len(tail[0].Plays) != 4 {
				t.Fatalf("straddling batch not kept whole: %+v", tail[0])
			}
			if tail[1].LastRound() != 9 {
				t.Fatalf("uncovered batch lost: %+v", tail[1])
			}
		})
	}
}

// TestFileTornBatchTail tears the WAL inside the final batch record and
// checks the all-or-nothing read contract: the torn batch vanishes as a
// unit — no prefix of its plays ever surfaces — while earlier whole
// batches load intact.
func TestFileTornBatchTail(t *testing.T) {
	dir := t.TempDir()
	f, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CreateSession("t", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := f.Append("t", batchRec(0, 5)); err != nil {
		t.Fatal(err)
	}
	if err := f.Append("t", batchRec(5, 5)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	wal := f.path("t", ".wal")
	info, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, info.Size()-9); err != nil {
		t.Fatal(err)
	}
	f2, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	state, ok, err := f2.LoadSession("t")
	if err != nil || !ok {
		t.Fatalf("load after tear: ok=%v err=%v", ok, err)
	}
	if len(state.Tail) != 1 {
		t.Fatalf("tail has %d records, want the 1 whole batch: %+v", len(state.Tail), state.Tail)
	}
	if got := state.Tail[0]; got.LastRound() != 4 || len(got.Plays) != 5 {
		t.Fatalf("surviving batch mangled: %+v", got)
	}
}

// TestGroupCommitEpochs exercises the committer directly: appends park on
// shared epochs, the window and the maxBatch kick both close epochs, the
// counters advance, and re-arming is a no-op.
func TestGroupCommitEpochs(t *testing.T) {
	f, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var epochs, syncedTotal, parkedTotal int
	var mu sync.Mutex
	f.SetGroupCommit(time.Millisecond, 4, func(synced, parked int) {
		mu.Lock()
		epochs++
		syncedTotal += synced
		parkedTotal += parked
		mu.Unlock()
	})
	f.SetGroupCommit(time.Hour, 1, nil) // second arm: ignored
	f.SetGroupCommit(0, 0, nil)         // non-positive window: ignored

	const sessions = 3
	for i := 0; i < sessions; i++ {
		if err := f.CreateSession(fmt.Sprintf("s%d", i), []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for r := 0; r < 8; r++ {
				if err := f.Append(id, Record{Type: RecordPlay, Round: r, Hash: "h"}); err != nil {
					t.Error(err)
					return
				}
			}
		}(fmt.Sprintf("s%d", i))
	}
	wg.Wait()

	if got := f.CommitEpochs(); got == 0 {
		t.Fatal("no commit epochs flushed")
	}
	if got := f.Fsyncs(); got == 0 || got > f.CommitEpochs()*sessions {
		t.Fatalf("fsyncs %d outside (0, epochs*%d]", got, sessions)
	}
	mu.Lock()
	defer mu.Unlock()
	if int64(epochs) != f.CommitEpochs() {
		t.Fatalf("onEpoch saw %d epochs, store counted %d", epochs, f.CommitEpochs())
	}
	if parkedTotal != sessions*8 {
		t.Fatalf("onEpoch released %d parked appends, want %d", parkedTotal, sessions*8)
	}
	if int64(syncedTotal) != f.Fsyncs() {
		t.Fatalf("onEpoch synced %d handles, store counted %d fsyncs", syncedTotal, f.Fsyncs())
	}
}

// TestGroupCommitCloseReleasesParked closes the store while appends are
// parked on an epoch: the committer's final drain must release every one
// of them — none may hang — and Close must still fsync and shut cleanly.
func TestGroupCommitCloseReleasesParked(t *testing.T) {
	f, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A huge window: nothing flushes until Close forces the final drain.
	f.SetGroupCommit(time.Hour, 0, nil)
	if err := f.CreateSession("p", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(r int) {
			done <- f.Append("p", Record{Type: RecordPlay, Round: r, Hash: "h"})
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let the appends park
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("parked append errored on close: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("append still parked after Close — final drain leaked a ticket")
		}
	}
}
