package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// File layout: one directory holds three files per session —
//
//	<dir>/sessions/<id>.spec   the opaque creation spec (written once)
//	<dir>/sessions/<id>.wal    the append-only record log
//	<dir>/sessions/<id>.snap   the latest compacted snapshot (atomic rename)
//
// Each WAL line is "<crc32c-hex> <json>\n": the checksum covers the JSON
// bytes, so a torn or corrupted tail (the half-written line of a crash) is
// detected and dropped instead of poisoning recovery. Snapshots are
// written to a temp file and renamed into place, so a crash mid-snapshot
// leaves the previous snapshot intact. PutSnapshot then rewrites the WAL
// keeping only records at or after the snapshot watermark — the
// "compaction" that bounds log growth on long-lived sessions.

// fileStripes is the per-session lock striping width (power of two).
const fileStripes = 64

// defaultMaxHandles bounds the WAL file handles kept open for appends, so
// thousands of durable sessions do not exhaust the process fd limit.
const defaultMaxHandles = 128

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// File is the file-backed Store. Appends go through a bounded cache of
// O_APPEND handles (evicted handles are fsynced before close); sessions
// stripe onto fileStripes locks so distinct sessions rarely serialize.
type File struct {
	dir string // the sessions directory

	stripes [fileStripes]sync.Mutex

	mu       sync.Mutex // guards handles, repaired, closed
	handles  map[string]*walHandle
	repaired map[string]struct{} // ids whose WAL tail was checked this process
	max      int
	closed   bool

	// evictions tracks in-flight evicted-handle syncs, which run outside
	// mu so one slow fsync cannot stall every session's handle lookup.
	// Sync and Close wait on it so "synced on eviction" stays true by the
	// time either returns.
	evictions sync.WaitGroup
}

// walHandle wraps one session's append handle. Writes and the
// evict-time fsync+close serialize on mu, so an append can never land
// between an eviction's Sync and its Close (which would leave an
// acknowledged record no later Store.Sync could reach). f is nil once
// the handle is closed; writers seeing nil reopen through the cache.
type walHandle struct {
	mu sync.Mutex
	f  *os.File
}

var _ Store = (*File)(nil)

// NewFile opens (creating if needed) a file store rooted at dir.
func NewFile(dir string) (*File, error) {
	sessions := filepath.Join(dir, "sessions")
	if err := os.MkdirAll(sessions, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &File{
		dir:      sessions,
		handles:  make(map[string]*walHandle),
		repaired: make(map[string]struct{}),
		max:      defaultMaxHandles,
	}, nil
}

// validID rejects ids that could escape the sessions directory. The
// Authority already restricts ids to [A-Za-z0-9._-]{1,64}; this is the
// backend's own defense.
func validID(id string) bool {
	if id == "" || id == "." || id == ".." || len(id) > 64 {
		return false
	}
	return !strings.ContainsAny(id, "/\\")
}

func (f *File) stripe(id string) *sync.Mutex {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return &f.stripes[h&(fileStripes-1)]
}

func (f *File) path(id, ext string) string {
	return filepath.Join(f.dir, id+ext)
}

// CreateSession implements Store.
func (f *File) CreateSession(id string, spec []byte) error {
	if !validID(id) {
		return fmt.Errorf("%w: invalid id %q", ErrUnknownSession, id)
	}
	mu := f.stripe(id)
	mu.Lock()
	defer mu.Unlock()
	if err := f.checkOpen(); err != nil {
		return err
	}
	specPath := f.path(id, ".spec")
	if _, err := os.Stat(specPath); err == nil {
		return fmt.Errorf("%w: %q", ErrSessionExists, id)
	}
	if err := atomicWrite(specPath, spec); err != nil {
		return err
	}
	// An empty WAL marks the session as live even before its first play.
	// The directory fsync makes its entry (and the spec's) survive an OS
	// crash — otherwise a "missing" WAL would silently read as round 0.
	wal, err := os.OpenFile(f.path(id, ".wal"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err == nil {
		if err = syncDir(f.dir); err != nil {
			wal.Close()
			os.Remove(f.path(id, ".wal"))
		}
	}
	if err != nil {
		// Scrub the spec: an orphaned half-created session would poison
		// the id and resurrect a phantom at the next recovery.
		os.Remove(specPath)
		return fmt.Errorf("store: %w", err)
	}
	f.cacheHandle(id, wal)
	f.mu.Lock()
	if !f.closed {
		f.repaired[id] = struct{}{} // a brand-new WAL needs no tail repair
	}
	f.mu.Unlock()
	return nil
}

// checkOpen reports ErrClosed after Close.
func (f *File) checkOpen() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	return nil
}

// Append implements Store.
func (f *File) Append(id string, rec Record) error {
	if !validID(id) {
		return fmt.Errorf("%w: invalid id %q", ErrUnknownSession, id)
	}
	line, err := appendWALLine(nil, rec)
	if err != nil {
		return err
	}

	mu := f.stripe(id)
	mu.Lock()
	defer mu.Unlock()
	for attempt := 0; attempt < 16; attempt++ {
		wh, err := f.handle(id)
		if err != nil {
			return err
		}
		wh.mu.Lock()
		if wh.f == nil {
			// Evicted between the cache lookup and the write lock; the
			// eviction fsynced everything it closed over. Reopen.
			wh.mu.Unlock()
			f.forgetHandle(id, wh)
			continue
		}
		_, werr := wh.f.Write(line)
		wh.mu.Unlock()
		if werr != nil {
			// The line may be partially on disk (short write on a full
			// disk): retire the handle and its repair latch so the next
			// append re-runs repairWAL and resumes on a clean boundary,
			// instead of gluing onto the fragment and escalating the torn
			// line into permanent mid-file corruption.
			f.invalidateHandle(id, wh)
			return fmt.Errorf("store: append %q: %w", id, werr)
		}
		return nil
	}
	return fmt.Errorf("store: append %q: handle churned out", id)
}

// invalidateHandle retires a handle whose last write failed. The handle
// is fsynced before closing (earlier acknowledged records keep the
// synced-on-retire contract) and the repair latch cleared; the caller
// holds the session's stripe lock.
func (f *File) invalidateHandle(id string, wh *walHandle) {
	closeHandle(wh)
	f.mu.Lock()
	if cur, ok := f.handles[id]; ok && cur == wh {
		delete(f.handles, id)
	}
	delete(f.repaired, id)
	f.mu.Unlock()
}

// forgetHandle removes the cache entry for id if it still maps to the
// given (already closed) handle.
func (f *File) forgetHandle(id string, wh *walHandle) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cur, ok := f.handles[id]; ok && cur == wh {
		delete(f.handles, id)
	}
}

// handle returns (opening if needed) the cached append handle for id. The
// caller holds the session's stripe lock.
func (f *File) handle(id string) (*walHandle, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	if wh, ok := f.handles[id]; ok {
		f.mu.Unlock()
		return wh, nil
	}
	f.mu.Unlock()

	if _, err := os.Stat(f.path(id, ".spec")); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	// A crash may have left a half-written final line. O_APPEND would glue
	// the next record onto that fragment — corrupting an acknowledged write
	// and, once valid records follow it, turning a tolerable torn tail into
	// the mid-file corruption readWAL refuses. Truncate to the last clean
	// line boundary before any append can land. Once per session per
	// process: everything this process wrote is clean, so cache-churn
	// reopens skip the scan.
	f.mu.Lock()
	_, checked := f.repaired[id]
	f.mu.Unlock()
	if !checked {
		if err := repairWAL(f.path(id, ".wal")); err != nil {
			return nil, err
		}
		f.mu.Lock()
		f.repaired[id] = struct{}{}
		f.mu.Unlock()
	}
	_, statErr := os.Stat(f.path(id, ".wal"))
	w, err := os.OpenFile(f.path(id, ".wal"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// The open normally finds an existing file (no directory change to
	// persist); only when it had to create one (first reopen after a
	// compaction race) is the new entry fsynced — a directory fsync on
	// every cache-miss reopen would put milliseconds on the append path
	// under handle churn.
	if errors.Is(statErr, fs.ErrNotExist) {
		if err := syncDir(f.dir); err != nil {
			w.Close()
			// Un-create the file, or the next reopen would stat it as
			// existing and skip the directory fsync forever — leaving an
			// entry an OS crash can drop along with acknowledged appends.
			os.Remove(f.path(id, ".wal"))
			return nil, err
		}
	}
	return f.cacheHandle(id, w), nil
}

// closeHandle fsyncs and closes one cached handle under its write lock,
// so no append can slip in between the sync and the close. Callers may
// hold f.mu (lock order is f.mu → walHandle.mu) or run lock-free on a
// handle already removed from the cache (eviction).
func closeHandle(wh *walHandle) {
	wh.mu.Lock()
	defer wh.mu.Unlock()
	if wh.f != nil {
		_ = wh.f.Sync()
		wh.f.Close()
		wh.f = nil
	}
}

// cacheHandle installs a handle, evicting an arbitrary other one (fsynced
// before close) when the cache is full. Losing a race to another opener
// just closes the newcomer and returns the winner. Victims are removed
// from the map under f.mu but synced+closed after it is released, so one
// slow fsync does not stall every other session's handle lookup; the
// evictions WaitGroup lets Sync and Close wait those syncs out. A
// straggler append on an evicted handle is safe: it serialized on the
// handle's own lock before the sync, or sees f == nil and reopens — and
// O_APPEND keeps whole-line writes from the brief old/new fd overlap
// intact (per-session appends serialize on the stripe lock anyway).
func (f *File) cacheHandle(id string, w *os.File) *walHandle {
	f.mu.Lock()
	wh := &walHandle{f: w}
	if f.closed {
		f.mu.Unlock()
		w.Close()
		wh.f = nil
		return wh // Append sees f == nil and fails through handle() → ErrClosed
	}
	if prev, ok := f.handles[id]; ok {
		f.mu.Unlock()
		w.Close()
		return prev
	}
	var victims []*walHandle
	for len(f.handles) >= f.max {
		evicted := false
		for other, oh := range f.handles {
			if other == id {
				continue
			}
			victims = append(victims, oh)
			delete(f.handles, other)
			evicted = true
			break
		}
		if !evicted {
			break // only this id is cached; nothing to evict
		}
	}
	f.handles[id] = wh
	f.evictions.Add(len(victims))
	f.mu.Unlock()
	for _, oh := range victims {
		closeHandle(oh)
		f.evictions.Done()
	}
	return wh
}

// dropHandle closes and forgets the cached handle for id (used before a
// compaction rewrite or delete replaces the file under it). No fsync:
// every caller immediately discards the inode — compaction re-persists
// the surviving records through atomicWrite, deletion unlinks them — so
// syncing here would only stall other sessions' lookups on f.mu.
func (f *File) dropHandle(id string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if wh, ok := f.handles[id]; ok {
		wh.mu.Lock()
		if wh.f != nil {
			wh.f.Close()
			wh.f = nil
		}
		wh.mu.Unlock()
		delete(f.handles, id)
	}
}

// PutSnapshot implements Store: snapshot first (atomic rename), then the
// WAL rewrite — a crash between the two leaves a superset WAL, which
// recovery tolerates (replay verification is keyed by round index).
func (f *File) PutSnapshot(id string, rounds int, payload []byte) error {
	if !validID(id) {
		return fmt.Errorf("%w: invalid id %q", ErrUnknownSession, id)
	}
	mu := f.stripe(id)
	mu.Lock()
	defer mu.Unlock()
	if err := f.checkOpen(); err != nil {
		return err
	}
	if _, err := os.Stat(f.path(id, ".spec")); err != nil {
		return fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	snap, err := json.Marshal(struct {
		Rounds  int             `json:"rounds"`
		Payload json.RawMessage `json:"payload"`
	}{Rounds: rounds, Payload: payload})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := atomicWrite(f.path(id, ".snap"), snap); err != nil {
		return err
	}
	// Compact: rewrite the WAL keeping records the snapshot does not cover.
	records, err := readWAL(f.path(id, ".wal"))
	if err != nil {
		return err
	}
	var buf []byte
	for _, rec := range compactWAL(records, rounds) {
		if buf, err = appendWALLine(buf, rec); err != nil {
			return err
		}
	}
	if err := atomicWrite(f.path(id, ".wal"), buf); err != nil {
		// The old WAL (and its cached handle) stays live, so Sync/Close
		// still reach any un-flushed appends.
		return err
	}
	// Only now is the old inode truly discarded: drop the cached handle
	// that still points at it (no append can interleave — the caller
	// holds the stripe lock).
	f.dropHandle(id)
	return nil
}

// Delete implements Store.
func (f *File) Delete(id string) error {
	if !validID(id) {
		return fmt.Errorf("%w: invalid id %q", ErrUnknownSession, id)
	}
	mu := f.stripe(id)
	mu.Lock()
	defer mu.Unlock()
	if err := f.checkOpen(); err != nil {
		return err
	}
	f.dropHandle(id)
	f.mu.Lock()
	delete(f.repaired, id)
	f.mu.Unlock()
	var first error
	removed := false
	for _, ext := range []string{".wal", ".snap", ".spec"} {
		switch err := os.Remove(f.path(id, ext)); {
		case err == nil:
			removed = true
		case !errors.Is(err, fs.ErrNotExist) && first == nil:
			first = fmt.Errorf("store: delete %q: %w", id, err)
		}
	}
	// Persist the unlinks: without the directory fsync an OS crash can
	// bring the files back, resurrecting a session the caller was told is
	// gone — the same reason every create and rename syncs the directory.
	if removed && first == nil {
		first = syncDir(f.dir)
	}
	return first
}

// IDs implements Store.
func (f *File) IDs() ([]string, error) {
	if err := f.checkOpen(); err != nil {
		return nil, err
	}
	return f.sessionIDs()
}

// Load implements Store.
func (f *File) Load() ([]SessionState, error) {
	if err := f.checkOpen(); err != nil {
		return nil, err
	}
	ids, err := f.sessionIDs()
	if err != nil {
		return nil, err
	}
	out := make([]SessionState, 0, len(ids))
	for _, id := range ids {
		st, ok, err := f.loadSession(id)
		if err != nil {
			return nil, err
		}
		if ok { // deleted between the listing and the load
			out = append(out, st)
		}
	}
	return out, nil
}

// LoadSession implements Store.
func (f *File) LoadSession(id string) (SessionState, bool, error) {
	if err := f.checkOpen(); err != nil {
		return SessionState{}, false, err
	}
	if !validID(id) {
		return SessionState{}, false, nil
	}
	if _, err := os.Stat(f.path(id, ".spec")); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return SessionState{}, false, nil
		}
		return SessionState{}, false, fmt.Errorf("store: %w", err)
	}
	return f.loadSession(id)
}

// Has reports whether a session with the given id is journaled — a cheap
// existence probe (one stat) for callers that do not need the state.
func (f *File) Has(id string) (bool, error) {
	if err := f.checkOpen(); err != nil {
		return false, err
	}
	if !validID(id) {
		return false, nil
	}
	if _, err := os.Stat(f.path(id, ".spec")); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return false, nil
		}
		return false, fmt.Errorf("store: %w", err)
	}
	return true, nil
}

// sessionIDs lists persisted sessions (those with a .spec file), sorted.
func (f *File) sessionIDs() ([]string, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".spec"); ok && !e.IsDir() {
			ids = append(ids, name)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// loadSession reads one session's spec, snapshot, and WAL tail under its
// stripe lock. ok is false when the spec vanished since the caller's
// existence check — a concurrent Delete, which must read as session
// absent, not as a store failure.
func (f *File) loadSession(id string) (SessionState, bool, error) {
	mu := f.stripe(id)
	mu.Lock()
	defer mu.Unlock()
	st := SessionState{ID: id}
	spec, err := os.ReadFile(f.path(id, ".spec"))
	if errors.Is(err, fs.ErrNotExist) {
		return st, false, nil
	}
	if err != nil {
		return st, false, fmt.Errorf("store: %w", err)
	}
	st.Spec = spec
	if rounds, payload, ok, err := readSnap(f.path(id, ".snap")); err != nil {
		return st, false, err
	} else if ok {
		st.SnapshotRounds = rounds
		st.Snapshot = payload
	}
	records, err := readWAL(f.path(id, ".wal"))
	if err != nil {
		return st, false, err
	}
	// A crash between snapshot and WAL rewrite leaves covered plays in the
	// log; drop them here so Tail honors the documented invariant.
	st.Tail = compactWAL(records, st.SnapshotRounds)
	finishState(&st)
	return st, true, nil
}

// Snapshots implements Store.
func (f *File) Snapshots() ([]SnapshotInfo, error) {
	if err := f.checkOpen(); err != nil {
		return nil, err
	}
	ids, err := f.sessionIDs()
	if err != nil {
		return nil, err
	}
	var out []SnapshotInfo
	for _, id := range ids {
		mu := f.stripe(id)
		mu.Lock()
		rounds, payload, ok, err := readSnap(f.path(id, ".snap"))
		mu.Unlock()
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, SnapshotInfo{ID: id, Rounds: rounds, Payload: payload})
		}
	}
	return out, nil
}

// Sync implements Store: fsync every open WAL handle (evicted handles were
// synced on eviction; snapshots and spec files are synced on write).
func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	// Evictions sync outside f.mu; wait them out so everything written
	// before this call is durable when it returns. In-flight evictions
	// complete without f.mu, and no new one can start while we hold it.
	f.evictions.Wait()
	var first error
	for id, wh := range f.handles {
		wh.mu.Lock()
		if wh.f != nil {
			if err := wh.f.Sync(); err != nil && first == nil {
				first = fmt.Errorf("store: sync %q: %w", id, err)
			}
		}
		wh.mu.Unlock()
	}
	return first
}

// Close implements Store: sync, release every handle, and refuse further
// writes. Idempotent.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	f.evictions.Wait() // see Sync: evicted-handle fsyncs must land too
	var first error
	for _, wh := range f.handles {
		wh.mu.Lock()
		if wh.f != nil {
			if err := wh.f.Sync(); err != nil && first == nil {
				first = fmt.Errorf("store: %w", err)
			}
			wh.f.Close()
			wh.f = nil
		}
		wh.mu.Unlock()
	}
	f.handles = nil
	return first
}

// --- File helpers --------------------------------------------------------------

// atomicWrite writes data to path via a temp file + fsync + rename +
// directory fsync, so readers never observe a torn file and the new
// directory entry survives an OS crash (the contract Sync documents).
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	} else {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so renames and creates within it are on
// stable storage.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync %s: %w", dir, err)
	}
	return nil
}

// repairWAL truncates a torn tail — the half-written final line(s) of a
// crash — so appends resume on a clean line boundary. A final record that
// is CRC-valid but lost only its newline is completed in place rather
// than dropped (it was acknowledged, and readWAL already accepts it).
// Corruption followed by a valid record is mid-file damage, not a torn
// tail: repair refuses, like readWAL, instead of burying the evidence
// under fresh appends. The caller holds the session's stripe lock.
func repairWAL(path string) error {
	file, err := os.OpenFile(path, os.O_RDWR, 0)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer file.Close()
	r := bufio.NewReaderSize(file, 64*1024)
	var (
		off   int64 // bytes consumed so far
		good  int64 // offset just past the last intact, terminated line
		torn  bool  // an invalid line has been seen
		dirty bool  // the file was modified and needs an fsync
	)
	for {
		line, rerr := r.ReadString('\n')
		if len(line) > 0 {
			terminated := strings.HasSuffix(line, "\n")
			_, valid := parseWALLine(strings.TrimSuffix(line, "\n"))
			off += int64(len(line))
			switch {
			case valid && torn:
				return fmt.Errorf("store: %s: corrupt record(s) before offset of a valid one", path)
			case valid && terminated:
				good = off
			case valid:
				// The crash clipped only the trailing newline; the record
				// itself is intact. Complete the line (pwrite at EOF).
				if _, err := file.WriteAt([]byte("\n"), off); err != nil {
					return fmt.Errorf("store: repair %s: %w", path, err)
				}
				off++
				good = off
				dirty = true
			default:
				torn = true
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return fmt.Errorf("store: %w", rerr)
		}
	}
	if good < off {
		if err := file.Truncate(good); err != nil {
			return fmt.Errorf("store: repair %s: %w", path, err)
		}
		dirty = true
	}
	if dirty {
		if err := file.Sync(); err != nil {
			return fmt.Errorf("store: repair %s: %w", path, err)
		}
	}
	return nil
}

// readWAL parses a WAL file, verifying each line's checksum. A torn or
// corrupt tail (crash artifact) truncates the result at the last good
// record; corruption before the tail is an error.
func readWAL(path string) ([]Record, error) {
	file, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer file.Close()
	var out []Record
	sc := bufio.NewScanner(file)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	bad := 0
	for sc.Scan() {
		line := sc.Text()
		rec, ok := parseWALLine(line)
		if !ok {
			bad++
			continue
		}
		if bad > 0 {
			// Good records after bad ones mean mid-file corruption, not a
			// torn tail — refuse to silently lose acknowledged plays.
			return nil, fmt.Errorf("store: %s: %d corrupt record(s) before offset of a valid one", path, bad)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return out, nil
}

// appendWALLine appends the canonical "<crc32c-hex> <json>\n" encoding of
// rec to buf — the one encoder matching parseWALLine, shared by Append
// and the compaction rewrite so the two can never drift.
func appendWALLine(buf []byte, rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return buf, fmt.Errorf("store: %w", err)
	}
	return fmt.Appendf(buf, "%08x %s\n", crc32.Checksum(payload, crcTable), payload), nil
}

// parseWALLine decodes one "<crc32c-hex> <json>" line.
func parseWALLine(line string) (Record, bool) {
	var rec Record
	if len(line) < 10 || line[8] != ' ' {
		return rec, false
	}
	var sum uint32
	if _, err := fmt.Sscanf(line[:8], "%08x", &sum); err != nil {
		return rec, false
	}
	payload := []byte(line[9:])
	if crc32.Checksum(payload, crcTable) != sum {
		return rec, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, false
	}
	return rec, true
}

// readSnap reads a snapshot file; ok is false when none exists.
func readSnap(path string) (rounds int, payload []byte, ok bool, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil, false, nil
	}
	if err != nil {
		return 0, nil, false, fmt.Errorf("store: %w", err)
	}
	var snap struct {
		Rounds  int             `json:"rounds"`
		Payload json.RawMessage `json:"payload"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return 0, nil, false, fmt.Errorf("store: %s: %w", path, err)
	}
	return snap.Rounds, snap.Payload, true, nil
}
