package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gameauthority/internal/obs"
)

// Durability-path telemetry: whole-append latency (write + commit park),
// individual fsync latency, and whole-epoch flush latency. Recording is
// allocation-free; see DESIGN.md §14.
var (
	walAppendLatency = obs.NewHistogram("gameauthority_wal_append_seconds",
		"Latency of one WAL append, including any group-commit park.")
	fsyncLatency = obs.NewHistogram("gameauthority_fsync_seconds",
		"Latency of one fsync/syncfs barrier against a session WAL.")
	commitEpochLatency = obs.NewHistogram("gameauthority_commit_epoch_seconds",
		"Latency of one group-commit epoch flush (detach to wakeup).")
)

// File layout: one directory holds three files per session —
//
//	<dir>/sessions/<id>.spec   the opaque creation spec (written once)
//	<dir>/sessions/<id>.wal    the append-only record log
//	<dir>/sessions/<id>.snap   the latest compacted snapshot (atomic rename)
//
// Each WAL line is "<crc32c-hex> <json>\n": the checksum covers the JSON
// bytes, so a torn or corrupted tail (the half-written line of a crash) is
// detected and dropped instead of poisoning recovery. Snapshots are
// written to a temp file and renamed into place, so a crash mid-snapshot
// leaves the previous snapshot intact. PutSnapshot then rewrites the WAL
// keeping only records at or after the snapshot watermark — the
// "compaction" that bounds log growth on long-lived sessions.

// fileStripes is the per-session lock striping width (power of two).
const fileStripes = 64

// defaultMaxHandles bounds the WAL file handles kept open for appends, so
// thousands of durable sessions do not exhaust the process fd limit.
const defaultMaxHandles = 128

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// File is the file-backed Store. Appends go through a bounded cache of
// O_APPEND handles (evicted handles are fsynced before close); sessions
// stripe onto fileStripes locks so distinct sessions rarely serialize.
type File struct {
	dir string // the sessions directory

	stripes [fileStripes]sync.Mutex

	mu       sync.Mutex // guards handles, repaired, closed
	handles  map[string]*walHandle
	repaired map[string]struct{} // ids whose WAL tail was checked this process
	max      int
	closed   bool

	// evictions tracks in-flight evicted-handle syncs, which run outside
	// mu so one slow fsync cannot stall every session's handle lookup.
	// Sync and Close wait on it so "synced on eviction" stays true by the
	// time either returns.
	evictions sync.WaitGroup

	// gc is the optional group committer (see SetGroupCommit); nil means
	// appends return as soon as the line is written (process-kill durable,
	// OS-crash durable only after Sync/Close/eviction).
	gc atomic.Pointer[groupCommitter]

	// fsyncs counts every fsync issued against a session WAL handle —
	// commit epochs, evictions, invalidations, Sync, and Close alike. The
	// group-commit regression gate reads it through Fsyncs.
	fsyncs atomic.Int64
	epochs atomic.Int64
}

// walHandle wraps one session's append handle. Writes and the
// evict-time fsync+close serialize on mu, so an append can never land
// between an eviction's Sync and its Close (which would leave an
// acknowledged record no later Store.Sync could reach). f is nil once
// the handle is closed; writers seeing nil reopen through the cache.
type walHandle struct {
	mu sync.Mutex
	f  *os.File
}

var _ Store = (*File)(nil)

// NewFile opens (creating if needed) a file store rooted at dir.
func NewFile(dir string) (*File, error) {
	sessions := filepath.Join(dir, "sessions")
	if err := os.MkdirAll(sessions, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &File{
		dir:      sessions,
		handles:  make(map[string]*walHandle),
		repaired: make(map[string]struct{}),
		max:      defaultMaxHandles,
	}, nil
}

// validID rejects ids that could escape the sessions directory. The
// Authority already restricts ids to [A-Za-z0-9._-]{1,64}; this is the
// backend's own defense.
func validID(id string) bool {
	if id == "" || id == "." || id == ".." || len(id) > 64 {
		return false
	}
	return !strings.ContainsAny(id, "/\\")
}

func (f *File) stripe(id string) *sync.Mutex {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return &f.stripes[h&(fileStripes-1)]
}

func (f *File) path(id, ext string) string {
	return filepath.Join(f.dir, id+ext)
}

// CreateSession implements Store.
func (f *File) CreateSession(id string, spec []byte) error {
	if !validID(id) {
		return fmt.Errorf("%w: invalid id %q", ErrUnknownSession, id)
	}
	mu := f.stripe(id)
	mu.Lock()
	defer mu.Unlock()
	if err := f.checkOpen(); err != nil {
		return err
	}
	specPath := f.path(id, ".spec")
	if _, err := os.Stat(specPath); err == nil {
		return fmt.Errorf("%w: %q", ErrSessionExists, id)
	}
	if err := atomicWrite(specPath, spec); err != nil {
		return err
	}
	// An empty WAL marks the session as live even before its first play.
	// The directory fsync makes its entry (and the spec's) survive an OS
	// crash — otherwise a "missing" WAL would silently read as round 0.
	wal, err := os.OpenFile(f.path(id, ".wal"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err == nil {
		if err = syncDir(f.dir); err != nil {
			wal.Close()
			os.Remove(f.path(id, ".wal"))
		}
	}
	if err != nil {
		// Scrub the spec: an orphaned half-created session would poison
		// the id and resurrect a phantom at the next recovery.
		os.Remove(specPath)
		return fmt.Errorf("store: %w", err)
	}
	f.cacheHandle(id, wal)
	f.mu.Lock()
	if !f.closed {
		f.repaired[id] = struct{}{} // a brand-new WAL needs no tail repair
	}
	f.mu.Unlock()
	return nil
}

// checkOpen reports ErrClosed after Close.
func (f *File) checkOpen() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	return nil
}

// Append implements Store. With group commit enabled (SetGroupCommit)
// the record is written immediately — surviving a process kill exactly
// like the direct path — and the call then parks on the current commit
// epoch's ticket until the background committer fsyncs the session's WAL
// handle, so on return the record also survives an OS crash at a cost
// amortized over every append sharing the epoch.
func (f *File) Append(id string, rec Record) error {
	if !validID(id) {
		return fmt.Errorf("%w: invalid id %q", ErrUnknownSession, id)
	}
	t0 := time.Now()
	span := obs.DefaultTracer.Begin("wal.append", "store", 0, int64(rec.LastRound()))
	line, err := appendWALLine(nil, rec)
	if err != nil {
		return err
	}
	wh, err := f.writeLine(id, line)
	if err != nil {
		return err
	}
	// Park outside the stripe lock: other sessions on the stripe (and
	// later appends to this one — ordering is the caller's journal mutex)
	// must not serialize behind a commit window.
	if gc := f.gc.Load(); gc != nil {
		if e := gc.enlist(wh); e != nil {
			<-e.done
			if e.err != nil {
				return fmt.Errorf("store: commit %q: %w", id, e.err)
			}
		}
	}
	span.End()
	walAppendLatency.Record(time.Since(t0))
	return nil
}

// writeLine appends one encoded line to the session's WAL under its
// stripe lock and returns the handle it landed on.
func (f *File) writeLine(id string, line []byte) (*walHandle, error) {
	mu := f.stripe(id)
	mu.Lock()
	defer mu.Unlock()
	for attempt := 0; attempt < 16; attempt++ {
		wh, err := f.handle(id)
		if err != nil {
			return nil, err
		}
		wh.mu.Lock()
		if wh.f == nil {
			// Evicted between the cache lookup and the write lock; the
			// eviction fsynced everything it closed over. Reopen.
			wh.mu.Unlock()
			f.forgetHandle(id, wh)
			continue
		}
		_, werr := wh.f.Write(line)
		wh.mu.Unlock()
		if werr != nil {
			// The line may be partially on disk (short write on a full
			// disk): retire the handle and its repair latch so the next
			// append re-runs repairWAL and resumes on a clean boundary,
			// instead of gluing onto the fragment and escalating the torn
			// line into permanent mid-file corruption.
			f.invalidateHandle(id, wh)
			return nil, fmt.Errorf("store: append %q: %w", id, werr)
		}
		return wh, nil
	}
	return nil, fmt.Errorf("store: append %q: handle churned out", id)
}

// invalidateHandle retires a handle whose last write failed. The handle
// is fsynced before closing (earlier acknowledged records keep the
// synced-on-retire contract) and the repair latch cleared; the caller
// holds the session's stripe lock.
func (f *File) invalidateHandle(id string, wh *walHandle) {
	f.closeHandle(wh)
	f.mu.Lock()
	if cur, ok := f.handles[id]; ok && cur == wh {
		delete(f.handles, id)
	}
	delete(f.repaired, id)
	f.mu.Unlock()
}

// forgetHandle removes the cache entry for id if it still maps to the
// given (already closed) handle.
func (f *File) forgetHandle(id string, wh *walHandle) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cur, ok := f.handles[id]; ok && cur == wh {
		delete(f.handles, id)
	}
}

// handle returns (opening if needed) the cached append handle for id. The
// caller holds the session's stripe lock.
func (f *File) handle(id string) (*walHandle, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	if wh, ok := f.handles[id]; ok {
		f.mu.Unlock()
		return wh, nil
	}
	f.mu.Unlock()

	if _, err := os.Stat(f.path(id, ".spec")); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	// A crash may have left a half-written final line. O_APPEND would glue
	// the next record onto that fragment — corrupting an acknowledged write
	// and, once valid records follow it, turning a tolerable torn tail into
	// the mid-file corruption readWAL refuses. Truncate to the last clean
	// line boundary before any append can land. Once per session per
	// process: everything this process wrote is clean, so cache-churn
	// reopens skip the scan.
	f.mu.Lock()
	_, checked := f.repaired[id]
	f.mu.Unlock()
	if !checked {
		if err := repairWAL(f.path(id, ".wal")); err != nil {
			return nil, err
		}
		f.mu.Lock()
		f.repaired[id] = struct{}{}
		f.mu.Unlock()
	}
	_, statErr := os.Stat(f.path(id, ".wal"))
	w, err := os.OpenFile(f.path(id, ".wal"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// The open normally finds an existing file (no directory change to
	// persist); only when it had to create one (first reopen after a
	// compaction race) is the new entry fsynced — a directory fsync on
	// every cache-miss reopen would put milliseconds on the append path
	// under handle churn.
	if errors.Is(statErr, fs.ErrNotExist) {
		if err := syncDir(f.dir); err != nil {
			w.Close()
			// Un-create the file, or the next reopen would stat it as
			// existing and skip the directory fsync forever — leaving an
			// entry an OS crash can drop along with acknowledged appends.
			os.Remove(f.path(id, ".wal"))
			return nil, err
		}
	}
	return f.cacheHandle(id, w), nil
}

// closeHandle fsyncs and closes one cached handle under its write lock,
// so no append can slip in between the sync and the close. Callers may
// hold f.mu (lock order is f.mu → walHandle.mu) or run lock-free on a
// handle already removed from the cache (eviction). Under a syncfs-armed
// committer the fsync is skipped: every acknowledged record on the
// handle already crossed an epoch barrier, and any unacknowledged tail
// is covered by the epoch its appender is parked on — syncfs flushes a
// closed fd's dirty pages all the same. Without that skip, handle-cache
// churn above max sessions costs one fsync per append and dominates the
// durable write path.
func (f *File) closeHandle(wh *walHandle) {
	syncfs := false
	if gc := f.gc.Load(); gc != nil && gc.syncfsOK.Load() {
		syncfs = true
	}
	wh.mu.Lock()
	defer wh.mu.Unlock()
	if wh.f != nil {
		if !syncfs {
			_ = wh.f.Sync()
			f.fsyncs.Add(1)
		}
		wh.f.Close()
		wh.f = nil
	}
}

// cacheHandle installs a handle, evicting an arbitrary other one (fsynced
// before close) when the cache is full. Losing a race to another opener
// just closes the newcomer and returns the winner. Victims are removed
// from the map under f.mu but synced+closed after it is released, so one
// slow fsync does not stall every other session's handle lookup; the
// evictions WaitGroup lets Sync and Close wait those syncs out. A
// straggler append on an evicted handle is safe: it serialized on the
// handle's own lock before the sync, or sees f == nil and reopens — and
// O_APPEND keeps whole-line writes from the brief old/new fd overlap
// intact (per-session appends serialize on the stripe lock anyway).
func (f *File) cacheHandle(id string, w *os.File) *walHandle {
	f.mu.Lock()
	wh := &walHandle{f: w}
	if f.closed {
		f.mu.Unlock()
		w.Close()
		wh.f = nil
		return wh // Append sees f == nil and fails through handle() → ErrClosed
	}
	if prev, ok := f.handles[id]; ok {
		f.mu.Unlock()
		w.Close()
		return prev
	}
	var victims []*walHandle
	for len(f.handles) >= f.max {
		evicted := false
		for other, oh := range f.handles {
			if other == id {
				continue
			}
			victims = append(victims, oh)
			delete(f.handles, other)
			evicted = true
			break
		}
		if !evicted {
			break // only this id is cached; nothing to evict
		}
	}
	f.handles[id] = wh
	f.evictions.Add(len(victims))
	f.mu.Unlock()
	for _, oh := range victims {
		f.closeHandle(oh)
		f.evictions.Done()
	}
	return wh
}

// dropHandle closes and forgets the cached handle for id (used before a
// compaction rewrite or delete replaces the file under it). No fsync:
// every caller immediately discards the inode — compaction re-persists
// the surviving records through atomicWrite, deletion unlinks them — so
// syncing here would only stall other sessions' lookups on f.mu.
func (f *File) dropHandle(id string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if wh, ok := f.handles[id]; ok {
		wh.mu.Lock()
		if wh.f != nil {
			wh.f.Close()
			wh.f = nil
		}
		wh.mu.Unlock()
		delete(f.handles, id)
	}
}

// PutSnapshot implements Store: snapshot first (atomic rename), then the
// WAL rewrite — a crash between the two leaves a superset WAL, which
// recovery tolerates (replay verification is keyed by round index).
func (f *File) PutSnapshot(id string, rounds int, payload []byte) error {
	if !validID(id) {
		return fmt.Errorf("%w: invalid id %q", ErrUnknownSession, id)
	}
	mu := f.stripe(id)
	mu.Lock()
	defer mu.Unlock()
	if err := f.checkOpen(); err != nil {
		return err
	}
	if _, err := os.Stat(f.path(id, ".spec")); err != nil {
		return fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	snap, err := json.Marshal(struct {
		Rounds  int             `json:"rounds"`
		Payload json.RawMessage `json:"payload"`
	}{Rounds: rounds, Payload: payload})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := atomicWrite(f.path(id, ".snap"), snap); err != nil {
		return err
	}
	// Compact: rewrite the WAL keeping records the snapshot does not cover.
	records, err := readWAL(f.path(id, ".wal"))
	if err != nil {
		return err
	}
	var buf []byte
	for _, rec := range compactWAL(records, rounds) {
		if buf, err = appendWALLine(buf, rec); err != nil {
			return err
		}
	}
	if err := atomicWrite(f.path(id, ".wal"), buf); err != nil {
		// The old WAL (and its cached handle) stays live, so Sync/Close
		// still reach any un-flushed appends.
		return err
	}
	// Only now is the old inode truly discarded: drop the cached handle
	// that still points at it (no append can interleave — the caller
	// holds the stripe lock).
	f.dropHandle(id)
	return nil
}

// Delete implements Store.
func (f *File) Delete(id string) error {
	if !validID(id) {
		return fmt.Errorf("%w: invalid id %q", ErrUnknownSession, id)
	}
	mu := f.stripe(id)
	mu.Lock()
	defer mu.Unlock()
	if err := f.checkOpen(); err != nil {
		return err
	}
	f.dropHandle(id)
	f.mu.Lock()
	delete(f.repaired, id)
	f.mu.Unlock()
	var first error
	removed := false
	for _, ext := range []string{".wal", ".snap", ".spec"} {
		switch err := os.Remove(f.path(id, ext)); {
		case err == nil:
			removed = true
		case !errors.Is(err, fs.ErrNotExist) && first == nil:
			first = fmt.Errorf("store: delete %q: %w", id, err)
		}
	}
	// Persist the unlinks: without the directory fsync an OS crash can
	// bring the files back, resurrecting a session the caller was told is
	// gone — the same reason every create and rename syncs the directory.
	if removed && first == nil {
		first = syncDir(f.dir)
	}
	return first
}

// IDs implements Store.
func (f *File) IDs() ([]string, error) {
	if err := f.checkOpen(); err != nil {
		return nil, err
	}
	return f.sessionIDs()
}

// Load implements Store.
func (f *File) Load() ([]SessionState, error) {
	if err := f.checkOpen(); err != nil {
		return nil, err
	}
	ids, err := f.sessionIDs()
	if err != nil {
		return nil, err
	}
	out := make([]SessionState, 0, len(ids))
	for _, id := range ids {
		st, ok, err := f.loadSession(id)
		if err != nil {
			return nil, err
		}
		if ok { // deleted between the listing and the load
			out = append(out, st)
		}
	}
	return out, nil
}

// LoadSession implements Store.
func (f *File) LoadSession(id string) (SessionState, bool, error) {
	if err := f.checkOpen(); err != nil {
		return SessionState{}, false, err
	}
	if !validID(id) {
		return SessionState{}, false, nil
	}
	if _, err := os.Stat(f.path(id, ".spec")); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return SessionState{}, false, nil
		}
		return SessionState{}, false, fmt.Errorf("store: %w", err)
	}
	return f.loadSession(id)
}

// Has reports whether a session with the given id is journaled — a cheap
// existence probe (one stat) for callers that do not need the state.
func (f *File) Has(id string) (bool, error) {
	if err := f.checkOpen(); err != nil {
		return false, err
	}
	if !validID(id) {
		return false, nil
	}
	if _, err := os.Stat(f.path(id, ".spec")); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return false, nil
		}
		return false, fmt.Errorf("store: %w", err)
	}
	return true, nil
}

// sessionIDs lists persisted sessions (those with a .spec file), sorted.
func (f *File) sessionIDs() ([]string, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".spec"); ok && !e.IsDir() {
			ids = append(ids, name)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// loadSession reads one session's spec, snapshot, and WAL tail under its
// stripe lock. ok is false when the spec vanished since the caller's
// existence check — a concurrent Delete, which must read as session
// absent, not as a store failure.
func (f *File) loadSession(id string) (SessionState, bool, error) {
	mu := f.stripe(id)
	mu.Lock()
	defer mu.Unlock()
	st := SessionState{ID: id}
	spec, err := os.ReadFile(f.path(id, ".spec"))
	if errors.Is(err, fs.ErrNotExist) {
		return st, false, nil
	}
	if err != nil {
		return st, false, fmt.Errorf("store: %w", err)
	}
	st.Spec = spec
	if rounds, payload, ok, err := readSnap(f.path(id, ".snap")); err != nil {
		return st, false, err
	} else if ok {
		st.SnapshotRounds = rounds
		st.Snapshot = payload
	}
	records, err := readWAL(f.path(id, ".wal"))
	if err != nil {
		return st, false, err
	}
	// A crash between snapshot and WAL rewrite leaves covered plays in the
	// log; drop them here so Tail honors the documented invariant.
	st.Tail = compactWAL(records, st.SnapshotRounds)
	finishState(&st)
	return st, true, nil
}

// Snapshots implements Store.
func (f *File) Snapshots() ([]SnapshotInfo, error) {
	if err := f.checkOpen(); err != nil {
		return nil, err
	}
	ids, err := f.sessionIDs()
	if err != nil {
		return nil, err
	}
	var out []SnapshotInfo
	for _, id := range ids {
		mu := f.stripe(id)
		mu.Lock()
		rounds, payload, ok, err := readSnap(f.path(id, ".snap"))
		mu.Unlock()
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, SnapshotInfo{ID: id, Rounds: rounds, Payload: payload})
		}
	}
	return out, nil
}

// Sync implements Store: fsync every open WAL handle (evicted handles were
// synced on eviction; snapshots and spec files are synced on write).
func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	// Evictions sync outside f.mu; wait them out so everything written
	// before this call is durable when it returns. In-flight evictions
	// complete without f.mu, and no new one can start while we hold it.
	f.evictions.Wait()
	// Under a syncfs-armed committer one filesystem barrier covers every
	// handle — cached, evicted, or closed — in a single journal commit.
	// A private dir fd avoids racing the committer's own (closed on stop).
	if gc := f.gc.Load(); gc != nil && gc.syncfsOK.Load() {
		if d, err := os.Open(f.dir); err == nil {
			ok, serr := syncFilesystem(d.Fd())
			d.Close()
			if ok {
				f.fsyncs.Add(1)
				if serr != nil {
					return fmt.Errorf("store: sync: %w", serr)
				}
				return nil
			}
		}
	}
	var first error
	for id, wh := range f.handles {
		wh.mu.Lock()
		if wh.f != nil {
			if err := wh.f.Sync(); err != nil && first == nil {
				first = fmt.Errorf("store: sync %q: %w", id, err)
			}
			f.fsyncs.Add(1)
		}
		wh.mu.Unlock()
	}
	return first
}

// Close implements Store: stop the group committer (releasing any parked
// appends), sync, release every handle, and refuse further writes.
// Idempotent.
func (f *File) Close() error {
	f.stopCommitter()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	f.evictions.Wait() // see Sync: evicted-handle fsyncs must land too
	var first error
	for _, wh := range f.handles {
		wh.mu.Lock()
		if wh.f != nil {
			if err := wh.f.Sync(); err != nil && first == nil {
				first = fmt.Errorf("store: %w", err)
			}
			f.fsyncs.Add(1)
			wh.f.Close()
			wh.f = nil
		}
		wh.mu.Unlock()
	}
	f.handles = nil
	return first
}

// --- Group commit --------------------------------------------------------------

// commitEpoch is one coalesced fsync barrier: every append since the
// previous flush registers its WAL handle in dirty and parks on done.
// The committer fsyncs each distinct dirty handle exactly once, stores
// the first failure in err, and releases every parked caller together.
type commitEpoch struct {
	dirty   map[*walHandle]struct{}
	tickets int
	done    chan struct{}
	err     error
}

// groupCommitter is the single background goroutine coalescing appends
// from many sessions into shared fsync epochs.
type groupCommitter struct {
	f        *File
	window   time.Duration
	maxBatch int
	onEpoch  func(synced, parked int)

	mu      sync.Mutex // guards cur and stopped
	cur     *commitEpoch
	stopped bool

	// dir is the open sessions directory used as the syncfs(2) anchor:
	// when non-nil, an epoch flushes with one filesystem-wide barrier
	// instead of one fsync per dirty handle. Only the committer goroutine
	// touches it after SetGroupCommit (stopCommitter closes it after the
	// goroutine exits). syncfsOK mirrors dir != nil for lock-free reads
	// from the eviction and Sync paths.
	dir      *os.File
	syncfsOK atomic.Bool

	kick chan struct{} // signaled when an epoch reaches maxBatch tickets
	stop chan struct{}
	wg   sync.WaitGroup
}

// SetGroupCommit turns on group commit: appends park on a shared commit
// ticket and return OS-crash durable, with the background committer
// issuing at most one fsync per dirty session per epoch. An epoch closes
// every window or as soon as maxBatch appends have parked on it,
// whichever comes first (maxBatch <= 0 means window-only). onEpoch, when
// non-nil, observes every flushed epoch with the number of handles
// fsynced and appends released. A non-positive window is a no-op; the
// committer stops (releasing any parked appends) on Close.
func (f *File) SetGroupCommit(window time.Duration, maxBatch int, onEpoch func(synced, parked int)) {
	if window <= 0 || f.gc.Load() != nil {
		return
	}
	if err := f.checkOpen(); err != nil {
		return
	}
	gc := &groupCommitter{
		f:        f,
		window:   window,
		maxBatch: maxBatch,
		onEpoch:  onEpoch,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	// Probe syncfs support up front (the probe itself is a harmless
	// barrier): committing to one flush mode for the committer's lifetime
	// is what lets evictions skip their fsync safely. A nil dir just
	// means per-handle fsyncs.
	if d, err := os.Open(f.dir); err == nil {
		if ok, serr := syncFilesystem(d.Fd()); ok && serr == nil {
			gc.dir = d
			gc.syncfsOK.Store(true)
		} else {
			d.Close()
		}
	}
	if !f.gc.CompareAndSwap(nil, gc) {
		if gc.dir != nil {
			gc.dir.Close()
		}
		return
	}
	// Scrape-time queue depth: appends parked on the open epoch. The
	// newest armed committer owns the series; a stopped committer reads 0.
	obs.RegisterGaugeFunc("gameauthority_group_commit_queue_depth",
		"Appends parked on the open group-commit epoch.",
		func() float64 { return float64(gc.pendingTickets()) })
	gc.wg.Add(1)
	go gc.run()
}

// Fsyncs reports the total fsyncs issued against session WAL handles —
// the quantity the group-commit regression gate bounds.
func (f *File) Fsyncs() int64 { return f.fsyncs.Load() }

// CommitEpochs reports how many group-commit epochs have been flushed.
func (f *File) CommitEpochs() int64 { return f.epochs.Load() }

// stopCommitter shuts the committer down, flushing the pending epoch so
// no parked append leaks. Idempotent.
func (f *File) stopCommitter() {
	gc := f.gc.Swap(nil)
	if gc == nil {
		return
	}
	close(gc.stop)
	gc.wg.Wait()
	if gc.dir != nil {
		gc.dir.Close()
	}
}

// enlist registers a successful append on the current epoch. It returns
// nil when the committer has stopped — the caller falls back to the
// direct-append contract (Close fsyncs everything anyway).
func (gc *groupCommitter) enlist(wh *walHandle) *commitEpoch {
	gc.mu.Lock()
	if gc.stopped {
		gc.mu.Unlock()
		return nil
	}
	e := gc.cur
	if e == nil {
		e = &commitEpoch{dirty: make(map[*walHandle]struct{}), done: make(chan struct{})}
		gc.cur = e
	}
	e.dirty[wh] = struct{}{}
	e.tickets++
	full := gc.maxBatch > 0 && e.tickets >= gc.maxBatch
	gc.mu.Unlock()
	if full {
		select {
		case gc.kick <- struct{}{}:
		default:
		}
	}
	return e
}

// run is the committer goroutine: flush on every window tick or maxBatch
// kick, then drain one final epoch on stop. Between window ticks it polls
// at a quarter-window cadence and flushes early once the epoch has gone
// quiet (no new append parked for a full poll interval): the window is a
// ceiling for coalescing steady load, not a debt a lone straggler must
// pay — without the early close, the last appends of a run leave the CPU
// idle for the window's remainder while their callers sit parked.
func (gc *groupCommitter) run() {
	defer gc.wg.Done()
	quiet := gc.window / 4
	if quiet < 50*time.Microsecond {
		quiet = 50 * time.Microsecond
	}
	ticker := time.NewTicker(gc.window)
	defer ticker.Stop()
	poll := time.NewTicker(quiet)
	defer poll.Stop()
	last := 0 // tickets observed at the previous quiet poll
	for {
		select {
		case <-ticker.C:
			gc.flush(false)
			last = 0
		case <-poll.C:
			n := gc.pendingTickets()
			if n > 0 && n == last {
				gc.flush(false)
				n = 0
			}
			last = n
		case <-gc.kick:
			gc.flush(false)
			last = 0
		case <-gc.stop:
			gc.flush(true)
			return
		}
	}
}

// pendingTickets reports how many appends are parked on the open epoch.
func (gc *groupCommitter) pendingTickets() int {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	if gc.cur == nil {
		return 0
	}
	return gc.cur.tickets
}

// flushFanout bounds how many dirty handles an epoch fsyncs concurrently.
// The fsyncs target distinct files, so they are independent I/O waits:
// overlapping them keeps the epoch's wall time near one device round trip
// instead of one per dirty session.
const flushFanout = 64

// flush detaches the pending epoch, fsyncs its dirty handles, and wakes
// every parked append. A handle already closed by eviction or
// invalidation is skipped: its close fsynced everything it held. Every
// appender parked on the epoch is already waiting on done, so holding the
// dirty handles' locks across the concurrent fsyncs cannot deadlock.
func (gc *groupCommitter) flush(final bool) {
	gc.mu.Lock()
	e := gc.cur
	gc.cur = nil
	if final {
		gc.stopped = true
	}
	gc.mu.Unlock()
	if e == nil {
		return
	}
	t0 := time.Now()
	span := obs.DefaultTracer.Begin("commit.epoch", "store", 0, int64(e.tickets))
	defer func() {
		span.End()
		commitEpochLatency.Record(time.Since(t0))
	}()
	var first error
	synced := 0
	if gc.dir != nil {
		// One syncfs barrier commits every dirty WAL in the epoch with a
		// single filesystem journal commit — the flat-cost flush that
		// makes the epoch price independent of how many sessions parked.
		// It also covers page-cache data of handles the cache evicted (a
		// closed fd's dirty pages still belong to the filesystem), which
		// is why closeHandle skips its fsync in this mode.
		ts := time.Now()
		ok, err := syncFilesystem(gc.dir.Fd())
		if ok {
			fsyncLatency.Record(time.Since(ts))
			gc.f.fsyncs.Add(1)
			e.err = err
			gc.f.epochs.Add(1)
			if gc.onEpoch != nil {
				gc.onEpoch(1, e.tickets)
			}
			close(e.done)
			return
		}
		// Unreachable after a successful arm-time probe, but stay safe:
		// fall back to per-handle fsyncs for the rest of the run.
		gc.syncfsOK.Store(false)
		gc.dir.Close()
		gc.dir = nil
	}
	syncOne := func(wh *walHandle) (did bool, err error) {
		wh.mu.Lock()
		defer wh.mu.Unlock()
		if wh.f == nil {
			return false, nil
		}
		ts := time.Now()
		err = wh.f.Sync()
		fsyncLatency.Record(time.Since(ts))
		gc.f.fsyncs.Add(1)
		return true, err
	}
	if len(e.dirty) == 1 {
		for wh := range e.dirty {
			did, err := syncOne(wh)
			if did {
				synced++
			}
			first = err
		}
	} else {
		var mu sync.Mutex
		var wg sync.WaitGroup
		sem := make(chan struct{}, flushFanout)
		for wh := range e.dirty {
			wg.Add(1)
			sem <- struct{}{}
			go func(wh *walHandle) {
				defer wg.Done()
				did, err := syncOne(wh)
				<-sem
				mu.Lock()
				if did {
					synced++
				}
				if err != nil && first == nil {
					first = err
				}
				mu.Unlock()
			}(wh)
		}
		wg.Wait()
	}
	e.err = first
	gc.f.epochs.Add(1)
	if gc.onEpoch != nil {
		gc.onEpoch(synced, e.tickets)
	}
	close(e.done)
}

// --- File helpers --------------------------------------------------------------

// atomicWrite writes data to path via a temp file + fsync + rename +
// directory fsync, so readers never observe a torn file and the new
// directory entry survives an OS crash (the contract Sync documents).
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	} else {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so renames and creates within it are on
// stable storage.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync %s: %w", dir, err)
	}
	return nil
}

// repairWAL truncates a torn tail — the half-written final line(s) of a
// crash — so appends resume on a clean line boundary. A final record that
// is CRC-valid but lost only its newline is completed in place rather
// than dropped (it was acknowledged, and readWAL already accepts it).
// Corruption followed by a valid record is mid-file damage, not a torn
// tail: repair refuses, like readWAL, instead of burying the evidence
// under fresh appends. The caller holds the session's stripe lock.
func repairWAL(path string) error {
	file, err := os.OpenFile(path, os.O_RDWR, 0)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer file.Close()
	r := bufio.NewReaderSize(file, 64*1024)
	var (
		off   int64 // bytes consumed so far
		good  int64 // offset just past the last intact, terminated line
		torn  bool  // an invalid line has been seen
		dirty bool  // the file was modified and needs an fsync
	)
	for {
		line, rerr := r.ReadString('\n')
		if len(line) > 0 {
			terminated := strings.HasSuffix(line, "\n")
			_, valid := parseWALLine(strings.TrimSuffix(line, "\n"))
			off += int64(len(line))
			switch {
			case valid && torn:
				return fmt.Errorf("store: %s: corrupt record(s) before offset of a valid one", path)
			case valid && terminated:
				good = off
			case valid:
				// The crash clipped only the trailing newline; the record
				// itself is intact. Complete the line (pwrite at EOF).
				if _, err := file.WriteAt([]byte("\n"), off); err != nil {
					return fmt.Errorf("store: repair %s: %w", path, err)
				}
				off++
				good = off
				dirty = true
			default:
				torn = true
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return fmt.Errorf("store: %w", rerr)
		}
	}
	if good < off {
		if err := file.Truncate(good); err != nil {
			return fmt.Errorf("store: repair %s: %w", path, err)
		}
		dirty = true
	}
	if dirty {
		if err := file.Sync(); err != nil {
			return fmt.Errorf("store: repair %s: %w", path, err)
		}
	}
	return nil
}

// readWAL parses a WAL file, verifying each line's checksum. A torn or
// corrupt tail (crash artifact) truncates the result at the last good
// record; corruption before the tail is an error.
func readWAL(path string) ([]Record, error) {
	file, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer file.Close()
	var out []Record
	sc := bufio.NewScanner(file)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	bad := 0
	for sc.Scan() {
		line := sc.Text()
		rec, ok := parseWALLine(line)
		if !ok {
			bad++
			continue
		}
		if bad > 0 {
			// Good records after bad ones mean mid-file corruption, not a
			// torn tail — refuse to silently lose acknowledged plays.
			return nil, fmt.Errorf("store: %s: %d corrupt record(s) before offset of a valid one", path, bad)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return out, nil
}

// appendWALLine appends the canonical "<crc32c-hex> <json>\n" encoding of
// rec to buf — the one encoder matching parseWALLine, shared by Append
// and the compaction rewrite so the two can never drift.
func appendWALLine(buf []byte, rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return buf, fmt.Errorf("store: %w", err)
	}
	return fmt.Appendf(buf, "%08x %s\n", crc32.Checksum(payload, crcTable), payload), nil
}

// parseWALLine decodes one "<crc32c-hex> <json>" line.
func parseWALLine(line string) (Record, bool) {
	var rec Record
	if len(line) < 10 || line[8] != ' ' {
		return rec, false
	}
	var sum uint32
	if _, err := fmt.Sscanf(line[:8], "%08x", &sum); err != nil {
		return rec, false
	}
	payload := []byte(line[9:])
	if crc32.Checksum(payload, crcTable) != sum {
		return rec, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, false
	}
	return rec, true
}

// readSnap reads a snapshot file; ok is false when none exists.
func readSnap(path string) (rounds int, payload []byte, ok bool, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil, false, nil
	}
	if err != nil {
		return 0, nil, false, fmt.Errorf("store: %w", err)
	}
	var snap struct {
		Rounds  int             `json:"rounds"`
		Payload json.RawMessage `json:"payload"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return 0, nil, false, fmt.Errorf("store: %s: %w", path, err)
	}
	return snap.Rounds, snap.Payload, true, nil
}
