//go:build linux && amd64

package store

// syncfs(2) syscall number on linux/amd64.
const sysSyncfs uintptr = 306
