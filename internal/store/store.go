package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Common errors.
var (
	// ErrClosed is returned by every operation on a closed store.
	ErrClosed = errors.New("store: closed")
	// ErrUnknownSession is returned when appending to or snapshotting a
	// session the store has never seen.
	ErrUnknownSession = errors.New("store: unknown session")
	// ErrSessionExists is returned when creating a session id twice.
	ErrSessionExists = errors.New("store: session already exists")
)

// Record kinds journaled in a session's WAL.
const (
	// RecordPlay journals one completed play: its absolute round index,
	// the canonical transcript hash, and the verdict/conviction summary.
	RecordPlay = "play"
	// RecordClose journals a graceful session close, with the post-close
	// state digest (a batched-audit mixed session mutates state on close).
	RecordClose = "close"
	// RecordBatch journals N consecutive completed plays as one WAL entry
	// (the PlayN path). The batch is one journal line, so the line CRC
	// makes it atomic: a crash either persists every play in the batch or
	// none of them — recovery never sees a torn prefix of a batch.
	RecordBatch = "batch"
)

// BatchPlay is one play inside a RecordBatch entry, carrying the same
// per-play summary a RecordPlay would.
type BatchPlay struct {
	Round     int    `json:"round"`
	Hash      string `json:"hash"`
	Fouls     int    `json:"fouls,omitempty"`
	Convicted []int  `json:"convicted,omitempty"`
}

// Record is one WAL entry. Play records carry Round/Hash (plus the
// verdict summary); batch records carry Plays; close records carry
// Digest.
type Record struct {
	Type string `json:"t"`
	// Round is the absolute round index of a play record.
	Round int `json:"round,omitempty"`
	// Hash is the canonical transcript hash of the play (core.HashResult) —
	// recovery verifies each replayed play against it.
	Hash string `json:"hash,omitempty"`
	// Fouls is the number of fouls the judicial service found in the play.
	Fouls int `json:"fouls,omitempty"`
	// Convicted lists the agents found guilty in the play's verdict.
	Convicted []int `json:"convicted,omitempty"`
	// Plays holds the per-play summaries of a batch record, in round order.
	Plays []BatchPlay `json:"plays,omitempty"`
	// Digest is the post-close state digest of a close record.
	Digest string `json:"digest,omitempty"`
}

// LastRound returns the highest absolute round index the record covers,
// or -1 for records that carry no round (close records, empty batches).
func (r *Record) LastRound() int {
	switch r.Type {
	case RecordPlay:
		return r.Round
	case RecordBatch:
		if n := len(r.Plays); n > 0 {
			return r.Plays[n-1].Round
		}
	}
	return -1
}

// SessionState is everything the store holds for one session: the opaque
// creation spec, the latest compacted snapshot (if any), and the WAL tail
// of records at or after the snapshot's round watermark.
type SessionState struct {
	ID string
	// Spec is the opaque serialized session spec (the façade journals the
	// HTTP CreateSessionRequest JSON).
	Spec []byte
	// SnapshotRounds is the round watermark of Snapshot (0 when none).
	SnapshotRounds int
	// Snapshot is the opaque latest snapshot payload (nil when none).
	Snapshot []byte
	// Tail holds the WAL records after the snapshot watermark, in append
	// order.
	Tail []Record
	// Closed reports whether a close record was journaled; CloseDigest is
	// its post-close state digest.
	Closed      bool
	CloseDigest string
}

// SnapshotInfo is one GET /snapshots listing entry: which sessions have a
// compacted snapshot and at which round watermark.
type SnapshotInfo struct {
	ID      string
	Rounds  int
	Payload []byte
}

// Store is a pluggable persistence backend for authority sessions. All
// methods are safe for concurrent use; operations on distinct sessions do
// not serialize against each other (beyond backend I/O).
//
// Durability contract: Append and PutSnapshot must survive a process kill
// (SIGKILL) as soon as they return; Sync additionally flushes to stable
// storage so the data survives an OS crash. Close implies Sync.
type Store interface {
	// CreateSession durably records a new session's opaque spec. It fails
	// with ErrSessionExists when the id is already journaled.
	CreateSession(id string, spec []byte) error
	// Append journals one WAL record for the session.
	Append(id string, rec Record) error
	// PutSnapshot atomically replaces the session's snapshot with payload
	// at the given round watermark and compacts the WAL: play records
	// below the watermark are dropped.
	PutSnapshot(id string, rounds int, payload []byte) error
	// Delete removes every trace of the session (spec, WAL, snapshot).
	Delete(id string) error
	// IDs lists every persisted session id, sorted, without reading any
	// journal — recovery workers load states individually so I/O overlaps
	// replay and memory stays bounded to in-flight sessions.
	IDs() ([]string, error)
	// Load reads every persisted session's state, sorted by id.
	Load() ([]SessionState, error)
	// LoadSession reads one session's state; ok is false when the id is
	// not persisted.
	LoadSession(id string) (st SessionState, ok bool, err error)
	// Snapshots lists the sessions holding a compacted snapshot, sorted
	// by id, without reading any WAL.
	Snapshots() ([]SnapshotInfo, error)
	// Sync flushes buffered writes to stable storage.
	Sync() error
	// Close syncs and releases the backend. Close is idempotent.
	Close() error
}

// --- In-memory backend ---------------------------------------------------------

// memSession is one session's in-memory journal.
type memSession struct {
	spec           []byte
	snapshotRounds int
	snapshot       []byte
	wal            []Record
}

// Mem is the in-memory Store: full WAL/snapshot semantics with no I/O.
// It survives the Authority that wrote it (crash-simulation harnesses
// abandon an authority and recover a fresh one from the same Mem), but
// not the process.
type Mem struct {
	mu       sync.RWMutex
	sessions map[string]*memSession
	closed   bool
}

// NewMem creates an empty in-memory store.
func NewMem() *Mem {
	return &Mem{sessions: make(map[string]*memSession)}
}

var _ Store = (*Mem)(nil)

// CreateSession implements Store.
func (m *Mem) CreateSession(id string, spec []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if _, ok := m.sessions[id]; ok {
		return fmt.Errorf("%w: %q", ErrSessionExists, id)
	}
	m.sessions[id] = &memSession{spec: append([]byte(nil), spec...)}
	return nil
}

// Append implements Store.
func (m *Mem) Append(id string, rec Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	s, ok := m.sessions[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	rec.Convicted = append([]int(nil), rec.Convicted...)
	if len(rec.Plays) > 0 {
		plays := make([]BatchPlay, len(rec.Plays))
		copy(plays, rec.Plays)
		for i := range plays {
			plays[i].Convicted = append([]int(nil), plays[i].Convicted...)
		}
		rec.Plays = plays
	}
	s.wal = append(s.wal, rec)
	return nil
}

// PutSnapshot implements Store.
func (m *Mem) PutSnapshot(id string, rounds int, payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	s, ok := m.sessions[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	s.snapshotRounds = rounds
	s.snapshot = append([]byte(nil), payload...)
	s.wal = compactWAL(s.wal, rounds)
	return nil
}

// compactWAL drops play records below the snapshot watermark; close
// records (and plays at or after the watermark) survive. A batch record
// is dropped only when its *last* play sits below the watermark: a batch
// straddling the watermark survives whole, and recovery — which replays
// from round zero anyway — simply has extra verified hashes below the
// snapshot round.
func compactWAL(wal []Record, rounds int) []Record {
	out := wal[:0]
	for _, rec := range wal {
		switch rec.Type {
		case RecordPlay:
			if rec.Round < rounds {
				continue
			}
		case RecordBatch:
			if n := len(rec.Plays); n == 0 || rec.Plays[n-1].Round < rounds {
				continue
			}
		}
		out = append(out, rec)
	}
	return out
}

// Delete implements Store.
func (m *Mem) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	delete(m.sessions, id)
	return nil
}

// Has reports whether a session with the given id is journaled — a cheap
// existence probe for callers that do not need the state.
func (m *Mem) Has(id string) (bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return false, ErrClosed
	}
	_, ok := m.sessions[id]
	return ok, nil
}

// IDs implements Store.
func (m *Mem) IDs() ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, ErrClosed
	}
	ids := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// Load implements Store.
func (m *Mem) Load() ([]SessionState, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, ErrClosed
	}
	out := make([]SessionState, 0, len(m.sessions))
	for id, s := range m.sessions {
		out = append(out, m.stateOf(id, s))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// LoadSession implements Store.
func (m *Mem) LoadSession(id string) (SessionState, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return SessionState{}, false, ErrClosed
	}
	s, ok := m.sessions[id]
	if !ok {
		return SessionState{}, false, nil
	}
	return m.stateOf(id, s), true, nil
}

// stateOf copies one session's journal out under the store lock. The tail
// re-applies the snapshot watermark: a play record appended concurrently
// with a compaction may sit below it in the raw WAL.
func (m *Mem) stateOf(id string, s *memSession) SessionState {
	st := SessionState{
		ID:             id,
		Spec:           append([]byte(nil), s.spec...),
		SnapshotRounds: s.snapshotRounds,
		Snapshot:       append([]byte(nil), s.snapshot...),
		Tail:           compactWAL(append([]Record(nil), s.wal...), s.snapshotRounds),
	}
	finishState(&st)
	return st
}

// finishState derives the Closed/CloseDigest summary from the WAL tail.
func finishState(st *SessionState) {
	if len(st.Snapshot) == 0 {
		st.Snapshot = nil
	}
	for _, rec := range st.Tail {
		if rec.Type == RecordClose {
			st.Closed = true
			st.CloseDigest = rec.Digest
		}
	}
}

// Snapshots implements Store.
func (m *Mem) Snapshots() ([]SnapshotInfo, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, ErrClosed
	}
	var out []SnapshotInfo
	for id, s := range m.sessions {
		if len(s.snapshot) == 0 {
			continue
		}
		out = append(out, SnapshotInfo{
			ID:      id,
			Rounds:  s.snapshotRounds,
			Payload: append([]byte(nil), s.snapshot...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Sync implements Store (a no-op in memory).
func (m *Mem) Sync() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	return nil
}

// Close implements Store.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
