//go:build linux && arm64

package store

// syncfs(2) syscall number on linux/arm64.
const sysSyncfs uintptr = 267
