//go:build !linux || !(amd64 || arm64)

package store

// syncFilesystem reports that no filesystem-wide sync barrier is
// available on this platform; group-commit epochs fall back to one fsync
// per dirty session handle.
func syncFilesystem(uintptr) (bool, error) { return false, nil }
