package hub

import (
	"runtime"
	"sync"
)

// shardInbox is each shard loop's command queue depth. A full inbox makes
// Submit block — backpressure onto the enqueuing connection rather than
// unbounded memory.
const shardInbox = 1024

// Shards is a pool of authoritative session loops: N goroutines, each
// owning the sessions whose ids hash onto it. All plays for a session run
// on its shard goroutine, so session work is single-threaded by
// construction and the network side only enqueues commands and dequeues
// results (the voxelcraft shape: one goroutine owns the world).
type Shards struct {
	inboxes []chan func()
	done    chan struct{}

	mu      sync.RWMutex // guards closed against Submit
	closed  bool
	pending sync.WaitGroup // Submits past the closed check, pre-enqueue
	loops   sync.WaitGroup
	once    sync.Once
}

// NewShards starts n shard loops; n < 1 means GOMAXPROCS.
func NewShards(n int) *Shards {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	s := &Shards{
		inboxes: make([]chan func(), n),
		done:    make(chan struct{}),
	}
	for i := range s.inboxes {
		s.inboxes[i] = make(chan func(), shardInbox)
		s.loops.Add(1)
		go s.run(s.inboxes[i])
	}
	return s
}

// N reports the number of shard loops.
func (s *Shards) N() int { return len(s.inboxes) }

// QueueDepth reports the commands currently queued across all shard
// inboxes — the sampled backlog behind the authoritative loops.
func (s *Shards) QueueDepth() int {
	n := 0
	for _, inbox := range s.inboxes {
		n += len(inbox)
	}
	return n
}

// Index reports which shard owns the key.
func (s *Shards) Index(key string) int {
	// FNV-1a, matching the registry's shard pinning.
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h % uint64(len(s.inboxes)))
}

// Submit enqueues job on the shard owning key. It blocks while the
// shard's inbox is full (bounded-queue backpressure) and returns false —
// without running the job — once the pool is closed. A true return
// guarantees the job will execute.
func (s *Shards) Submit(key string, job func()) bool {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return false
	}
	s.pending.Add(1)
	s.mu.RUnlock()
	s.inboxes[s.Index(key)] <- job
	s.pending.Done()
	return true
}

func (s *Shards) run(inbox chan func()) {
	defer s.loops.Done()
	for {
		select {
		case job := <-inbox:
			job()
		case <-s.done:
			// No Submit can enqueue anymore (Close waits for in-flight
			// sends before closing done): drain what is queued and exit,
			// so every accepted job runs.
			for {
				select {
				case job := <-inbox:
					job()
				default:
					return
				}
			}
		}
	}
}

// Close stops accepting jobs, runs everything already accepted, and
// waits for the loops to exit. Safe to call more than once.
func (s *Shards) Close() {
	s.once.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.pending.Wait()
		close(s.done)
		s.loops.Wait()
	})
}
