package hub

import (
	"bufio"
	cryptorand "crypto/rand"
	"encoding/base64"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sync"
	"time"

	"gameauthority/internal/wire"
)

// cryptoRand seeds per-connection mask-key PRNGs.
var cryptoRand = cryptorand.Reader

func newConnReader(conn net.Conn) *bufio.Reader {
	return bufio.NewReaderSize(conn, 1<<16)
}

// ErrClientClosed reports an operation on a closed client connection.
var ErrClientClosed = errors.New("hub: client connection closed")

// RemoteError is a server-reported command failure.
type RemoteError struct {
	Code   uint64
	Detail string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("hub: remote error %d: %s", e.Code, e.Detail)
}

// PlayOutcome is the client-side result of one play batch.
type PlayOutcome struct {
	// Completed counts the rounds that ran before any error.
	Completed int
	// Last is the final decoded result (valid when Completed > 0). Its
	// slices are owned by the client connection; copy to retain.
	Last wire.Result
}

// EventHandler consumes pushed events for one subscription. lag is the
// number of events dropped immediately before ev (0 almost always); the
// event following a lag gap is always self-contained. The handler runs
// on the connection's read goroutine: it must not block, and ev's slices
// are owned by the delta decoder — valid only for the duration of the
// call, copy to retain.
type EventHandler func(ev wire.Event, lag uint64)

// Client is one multiplexed WebSocket connection to an authority. All
// methods are safe for concurrent use: many goroutines can issue
// commands over one connection, and a writer goroutine coalesces their
// frames into shared flushes.
type Client struct {
	ws     *WSConn
	Shards int // shard loops on the serving authority (from Welcome)

	outbox chan []byte
	done   chan struct{}
	once   sync.Once
	cause  error

	mu      sync.Mutex // guards pending, subs, nextReq, bufs
	pending map[uint64]chan clientReply
	subs    map[uint64]*clientSub
	nextReq uint64
	bufs    [][]byte
}

type clientReply struct {
	msg any
	err error
}

type clientSub struct {
	dec     wire.EventDecoder
	lag     uint64
	handler EventHandler
}

// Dial connects and performs the protocol handshake. rawURL accepts
// ws://, wss:// is not supported (no TLS in this deployment), and for
// convenience http:// URLs (e.g. a httptest server base) are rewritten.
func Dial(rawURL string) (*Client, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("hub: dial: %w", err)
	}
	switch u.Scheme {
	case "ws", "http":
	default:
		return nil, fmt.Errorf("hub: dial: unsupported scheme %q", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	path := u.Path
	if path == "" || path == "/" {
		path = "/ws"
	}
	conn, err := net.Dial("tcp", host)
	if err != nil {
		return nil, fmt.Errorf("hub: dial: %w", err)
	}
	ws, err := clientHandshake(conn, host, path)
	if err != nil {
		conn.Close()
		return nil, err
	}

	c := &Client{
		ws:      ws,
		outbox:  make(chan []byte, 256),
		done:    make(chan struct{}),
		pending: make(map[uint64]chan clientReply),
		subs:    make(map[uint64]*clientSub),
	}
	// Protocol handshake: Hello, then Welcome.
	if err := ws.WriteMessage(opBinary, wire.AppendHello(nil, wire.Version)); err != nil {
		ws.Close()
		return nil, fmt.Errorf("hub: handshake: %w", err)
	}
	ws.SetReadDeadline(time.Now().Add(10 * time.Second))
	op, payload, err := ws.ReadMessage()
	if err != nil || op != opBinary {
		ws.Close()
		return nil, fmt.Errorf("hub: handshake: no welcome: %v", err)
	}
	dec := wire.NewDecoder(payload)
	if dec.Byte() != wire.MsgWelcome {
		ws.Close()
		return nil, errors.New("hub: handshake: unexpected first message")
	}
	welcome, err := wire.DecodeWelcome(&dec)
	if err != nil || welcome.Version != wire.Version {
		ws.Close()
		return nil, errors.New("hub: handshake: protocol version mismatch")
	}
	ws.SetReadDeadline(time.Time{})
	c.Shards = int(welcome.Shards)

	go c.readLoop()
	go c.writeLoop()
	return c, nil
}

func clientHandshake(conn net.Conn, host, path string) (*WSConn, error) {
	var keyRaw [16]byte
	if _, err := cryptoRand.Read(keyRaw[:]); err != nil {
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyRaw[:])
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write([]byte(req)); err != nil {
		return nil, fmt.Errorf("hub: handshake request: %w", err)
	}
	br := newConnReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		return nil, fmt.Errorf("hub: handshake response: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		return nil, fmt.Errorf("hub: handshake refused: %s", resp.Status)
	}
	if resp.Header.Get("Sec-WebSocket-Accept") != acceptKey(key) {
		return nil, errors.New("hub: handshake: bad Sec-WebSocket-Accept")
	}
	conn.SetDeadline(time.Time{})
	return newWSConn(conn, br, true, 0), nil
}

func (c *Client) getBuf() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.bufs); n > 0 {
		b := c.bufs[n-1]
		c.bufs = c.bufs[:n-1]
		return b[:0]
	}
	return make([]byte, 0, 256)
}

func (c *Client) putBuf(b []byte) {
	if cap(b) > 1<<16 {
		return
	}
	c.mu.Lock()
	if len(c.bufs) < 64 {
		c.bufs = append(c.bufs, b)
	}
	c.mu.Unlock()
}

func (c *Client) closeWith(err error) {
	c.once.Do(func() {
		c.cause = err
		close(c.done)
		c.ws.Close()
		c.mu.Lock()
		pend := c.pending
		c.pending = map[uint64]chan clientReply{}
		c.mu.Unlock()
		for _, ch := range pend {
			ch <- clientReply{err: err}
		}
	})
}

// Close tears the connection down; outstanding commands fail with
// ErrClientClosed.
func (c *Client) Close() error {
	c.closeWith(ErrClientClosed)
	return nil
}

func (c *Client) writeLoop() {
	for {
		select {
		case b := <-c.outbox:
			c.ws.SetWriteDeadline(time.Now().Add(30 * time.Second))
			err := c.ws.WriteMessageNoFlush(opBinary, b)
			c.putBuf(b)
			for err == nil {
				select {
				case b2 := <-c.outbox:
					err = c.ws.WriteMessageNoFlush(opBinary, b2)
					c.putBuf(b2)
					continue
				default:
				}
				break
			}
			if err == nil {
				err = c.ws.Flush()
			}
			if err != nil {
				c.closeWith(fmt.Errorf("hub: client write: %w", err))
				return
			}
		case <-c.done:
			return
		}
	}
}

func (c *Client) readLoop() {
	var scratch wire.Result
	for {
		op, payload, err := c.ws.ReadMessage()
		if err != nil {
			if errors.Is(err, ErrWSClosed) {
				err = ErrClientClosed
			}
			c.closeWith(err)
			return
		}
		if op != opBinary {
			continue
		}
		dec := wire.NewDecoder(payload)
		for dec.Len() > 0 {
			if err := c.dispatch(&dec, &scratch); err != nil {
				c.closeWith(err)
				return
			}
		}
	}
}

// dispatch routes one server message: replies resolve the pending
// round-trip by request id, pushes go to the subscription handler.
func (c *Client) dispatch(dec *wire.Decoder, scratch *wire.Result) error {
	switch typ := dec.Byte(); typ {
	case wire.MsgCreated:
		m, err := wire.DecodeCreated(dec)
		if err != nil {
			return err
		}
		c.resolve(m.ReqID, clientReply{msg: m})
	case wire.MsgResults:
		h, err := wire.DecodeResultsHeader(dec)
		if err != nil {
			return err
		}
		// Decode in place with one reusable scratch result; the waiter
		// only sees the count and the final result, so a 100k-session
		// load generator never allocates per round.
		var out PlayOutcome
		for {
			more, err := wire.DecodeResultItem(dec, scratch)
			if err != nil {
				return err
			}
			if !more {
				break
			}
			out.Completed++
		}
		out.Last = *scratch
		t, err := wire.DecodeResultsTrailer(dec)
		if err != nil {
			return err
		}
		rep := clientReply{msg: out}
		if t.Code != wire.CodeOK {
			rep.err = &RemoteError{Code: t.Code, Detail: t.Detail}
			rep.msg = out // partial results still visible to the caller
		}
		c.resolve(h.ReqID, rep)
	case wire.MsgError:
		m, err := wire.DecodeError(dec)
		if err != nil {
			return err
		}
		c.resolve(m.ReqID, clientReply{err: &RemoteError{Code: m.Code, Detail: m.Detail}})
	case wire.MsgOK:
		m, err := wire.DecodeOK(dec)
		if err != nil {
			return err
		}
		c.resolve(m.ReqID, clientReply{msg: m})
	case wire.MsgStatsReply:
		reqID, st, err := wire.DecodeStatsReply(dec)
		if err != nil {
			return err
		}
		c.resolve(reqID, clientReply{msg: st})
	case wire.MsgSnapshotReply:
		m, err := wire.DecodeSnapshotReply(dec)
		if err != nil {
			return err
		}
		c.resolve(m.ReqID, clientReply{msg: m})
	case wire.MsgEvent:
		ref := dec.Uvarint()
		if err := dec.Err(); err != nil {
			return err
		}
		c.mu.Lock()
		sub := c.subs[ref]
		c.mu.Unlock()
		if sub == nil {
			// Event for a ref we no longer track: skip by decoding with
			// a throwaway decoder (delta state is irrelevant once
			// unsubscribed).
			var dead wire.EventDecoder
			_, err := dead.Decode(dec)
			return err
		}
		ev, err := sub.dec.Decode(dec)
		if err != nil {
			return err
		}
		lag := sub.lag
		sub.lag = 0
		if sub.handler != nil {
			sub.handler(ev, lag)
		}
	case wire.MsgLag:
		m, err := wire.DecodeLag(dec)
		if err != nil {
			return err
		}
		c.mu.Lock()
		if sub := c.subs[m.Ref]; sub != nil {
			sub.lag += m.Dropped
		}
		c.mu.Unlock()
	default:
		return fmt.Errorf("hub: client: unexpected message type %#x", typ)
	}
	return nil
}

func (c *Client) resolve(reqID uint64, rep clientReply) {
	c.mu.Lock()
	ch := c.pending[reqID]
	delete(c.pending, reqID)
	c.mu.Unlock()
	if ch != nil {
		ch <- rep
	}
}

// roundTrip sends an encoded command frame and waits for its reply.
func (c *Client) roundTrip(reqID uint64, frame []byte) (any, error) {
	ch := make(chan clientReply, 1)
	c.mu.Lock()
	c.pending[reqID] = ch
	c.mu.Unlock()
	select {
	case c.outbox <- frame:
	case <-c.done:
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
		return nil, c.cause
	}
	select {
	case rep := <-ch:
		return rep.msg, rep.err
	case <-c.done:
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
		// A raced resolve may have delivered after done; prefer it.
		select {
		case rep := <-ch:
			return rep.msg, rep.err
		default:
			return nil, c.cause
		}
	}
}

func (c *Client) reqID() uint64 {
	c.mu.Lock()
	c.nextReq++
	id := c.nextReq
	c.mu.Unlock()
	return id
}

// Create hosts a session from a JSON CreateSessionRequest document and
// returns its connection-local ref and canonical id.
func (c *Client) Create(spec []byte) (ref uint64, id string, err error) {
	rid := c.reqID()
	msg, err := c.roundTrip(rid, wire.AppendCreate(c.getBuf(), rid, spec))
	if err != nil {
		return 0, "", err
	}
	created, ok := msg.(wire.Created)
	if !ok {
		return 0, "", errors.New("hub: client: unexpected create reply")
	}
	return created.Ref, created.ID, nil
}

// Attach binds an existing session (recovering it from the durable store
// if needed) and returns its ref.
func (c *Client) Attach(id string) (ref uint64, err error) {
	rid := c.reqID()
	msg, err := c.roundTrip(rid, wire.AppendAttach(c.getBuf(), rid, id))
	if err != nil {
		return 0, err
	}
	created, ok := msg.(wire.Created)
	if !ok {
		return 0, errors.New("hub: client: unexpected attach reply")
	}
	return created.Ref, nil
}

// Play runs rounds plays on ref.
func (c *Client) Play(ref uint64, rounds int) (PlayOutcome, error) {
	rid := c.reqID()
	msg, err := c.roundTrip(rid, wire.AppendPlay(c.getBuf(), rid, ref, uint64(rounds)))
	out, _ := msg.(PlayOutcome)
	return out, err
}

// Subscribe starts event delivery for ref. The handler runs on the
// connection's read goroutine: it must not block and must not call back
// into the client synchronously.
func (c *Client) Subscribe(ref uint64, handler EventHandler) error {
	c.mu.Lock()
	if _, dup := c.subs[ref]; dup {
		c.mu.Unlock()
		return errors.New("hub: client: already subscribed")
	}
	c.subs[ref] = &clientSub{handler: handler}
	c.mu.Unlock()
	rid := c.reqID()
	_, err := c.roundTrip(rid, wire.AppendRefReq(c.getBuf(), wire.MsgSubscribe, rid, ref))
	if err != nil {
		c.mu.Lock()
		delete(c.subs, ref)
		c.mu.Unlock()
	}
	return err
}

// Unsubscribe stops event delivery for ref.
func (c *Client) Unsubscribe(ref uint64) error {
	rid := c.reqID()
	_, err := c.roundTrip(rid, wire.AppendRefReq(c.getBuf(), wire.MsgUnsubscribe, rid, ref))
	c.mu.Lock()
	delete(c.subs, ref)
	c.mu.Unlock()
	return err
}

// Stats fetches driver stats for ref.
func (c *Client) Stats(ref uint64) (wire.Stats, error) {
	rid := c.reqID()
	msg, err := c.roundTrip(rid, wire.AppendRefReq(c.getBuf(), wire.MsgStats, rid, ref))
	if err != nil {
		return wire.Stats{}, err
	}
	st, ok := msg.(wire.Stats)
	if !ok {
		return wire.Stats{}, errors.New("hub: client: unexpected stats reply")
	}
	return st, nil
}

// Snapshot captures (and persists, when the authority is durable) the
// session snapshot and returns its canonical digest.
func (c *Client) Snapshot(ref uint64) (wire.SnapshotReply, error) {
	rid := c.reqID()
	msg, err := c.roundTrip(rid, wire.AppendRefReq(c.getBuf(), wire.MsgSnapshot, rid, ref))
	if err != nil {
		return wire.SnapshotReply{}, err
	}
	snap, ok := msg.(wire.SnapshotReply)
	if !ok {
		return wire.SnapshotReply{}, errors.New("hub: client: unexpected snapshot reply")
	}
	return snap, nil
}

// CloseSession closes and unregisters the session bound to ref.
func (c *Client) CloseSession(ref uint64) error {
	rid := c.reqID()
	c.mu.Lock()
	delete(c.subs, ref)
	c.mu.Unlock()
	_, err := c.roundTrip(rid, wire.AppendRefReq(c.getBuf(), wire.MsgCloseSession, rid, ref))
	return err
}
