package hub

import (
	"bufio"
	cryptorand "crypto/rand"
	"encoding/base64"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"gameauthority/internal/prng"
	"gameauthority/internal/wire"
)

// cryptoRand seeds per-connection mask-key PRNGs.
var cryptoRand = cryptorand.Reader

func newConnReader(conn net.Conn) *bufio.Reader {
	return bufio.NewReaderSize(conn, 1<<16)
}

// ErrClientClosed reports an operation on a closed client connection.
var ErrClientClosed = errors.New("hub: client connection closed")

// ErrConnLost marks a command that failed because the underlying
// connection died mid-flight. With DialOptions.Reconnect set, the client
// retries idempotent commands internally; commands that cannot be
// retried blindly (Create) surface it wrapped for the caller to handle.
var ErrConnLost = errors.New("hub: connection lost")

// RemoteError is a server-reported command failure.
type RemoteError struct {
	Code   uint64
	Detail string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("hub: remote error %d: %s", e.Code, e.Detail)
}

// PlayOutcome is the client-side result of one play batch.
type PlayOutcome struct {
	// Completed counts the rounds delivered before any error, including
	// deduplicated replays of rounds a lost connection orphaned.
	Completed int
	// Deduped counts how many of the delivered rounds were replayed from
	// the server's journal instead of being played fresh (idempotent
	// retry overlap).
	Deduped int
	// Last is the final decoded result (valid when Completed > 0). Its
	// slices are owned by the client connection; copy to retain.
	Last wire.Result
}

// EventHandler consumes pushed events for one subscription. lag is the
// number of events dropped (or missed across a disconnect) immediately
// before ev (0 almost always); the event following a lag gap is always
// self-contained. The handler runs on the connection's read goroutine:
// it must not block, and ev's slices are owned by the delta decoder —
// valid only for the duration of the call, copy to retain.
type EventHandler func(ev wire.Event, lag uint64)

// DialOptions tune a Client connection.
type DialOptions struct {
	// ConnectTimeout bounds the TCP dial (default 10s).
	ConnectTimeout time.Duration
	// HandshakeTimeout bounds the HTTP upgrade and protocol handshake
	// (default 10s).
	HandshakeTimeout time.Duration

	// Reconnect makes the client self-healing: when the connection dies
	// it re-dials with exponential backoff and jitter, re-attaches every
	// known session by id, resumes subscriptions with their event
	// sequence tokens, and retries idempotent commands (Play retries use
	// the session's round watermark, so the server dedupes rounds the
	// lost connection orphaned — no verdict is ever double-played or
	// lost). Reconnecting clients assume each session is driven through
	// one ref at a time; concurrent Plays on the same session through
	// different clients would confuse the watermark accounting.
	Reconnect bool
	// BackoffMin/BackoffMax bound the reconnect backoff (defaults 50ms
	// and 2s); each attempt doubles the delay, jittered by the seeded
	// PRNG.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// MaxAttempts caps consecutive failed reconnect attempts before the
	// client gives up and closes permanently (0 = retry forever).
	MaxAttempts int

	// PingInterval enables the idle keepalive: when no frame arrives for
	// one interval the client pings, and when a second interval passes
	// silently it declares the connection half-open and tears it down
	// (triggering a reconnect when enabled). 0 disables the probe.
	PingInterval time.Duration

	// Seed seeds the backoff jitter PRNG (chaos harnesses pin it for
	// reproducible schedules).
	Seed uint64
	// WrapConn, when set, decorates the TCP connection before the
	// handshake — the hook for client-side fault injection
	// (faults.Plan.Conn).
	WrapConn func(net.Conn) net.Conn
}

func (o *DialOptions) withDefaults() {
	if o.ConnectTimeout <= 0 {
		o.ConnectTimeout = 10 * time.Second
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 10 * time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.BackoffMax < o.BackoffMin {
		o.BackoffMax = o.BackoffMin
	}
}

// ClientCounters are a client's self-healing tallies.
type ClientCounters struct {
	// Reconnects counts successful re-dials after a lost connection.
	Reconnects uint64
	// ResumedSubscriptions counts subscriptions re-established with a
	// resume token after a reconnect.
	ResumedSubscriptions uint64
	// DedupedRounds counts play rounds the server answered from its
	// journal on retried commands instead of re-playing.
	DedupedRounds uint64
}

// clientConn is one physical connection: the socket plus its writer
// queue and lifecycle channels. The Client swaps these out across
// reconnects while sessions and subscriptions persist above.
type clientConn struct {
	ws       *WSConn
	outbox   chan []byte
	down     chan struct{} // closed when the connection is declared dead
	readDone chan struct{} // closed when the read goroutine has exited
	once     sync.Once
	err      error
}

func (cc *clientConn) fail(err error) {
	cc.once.Do(func() {
		cc.err = err
		close(cc.down)
		cc.ws.Close()
	})
}

// clientSession is one bound session as the client tracks it across
// reconnects. ref is the client-stable handle returned to callers; the
// server-side ref is re-learned on every (re)attach.
type clientSession struct {
	ref uint64
	id  string

	// rounds is the idempotency watermark: completed rounds whose
	// results this client has delivered to its caller.
	rounds atomic.Uint64

	// serverRef, sub, and err are guarded by the Client mutex.
	serverRef uint64
	sub       *clientSub
	err       error // re-attach failure; cleared when a later attach succeeds
}

type clientSub struct {
	handler EventHandler
	// dec, lag, lastSeq, and resumed are owned by the connection's read
	// goroutine; the reconnect manager touches them only between read
	// goroutines (it waits for the old reader to exit and publishes
	// before the new subscription is registered).
	dec     wire.EventDecoder
	lag     uint64
	lastSeq uint64
	resumed bool
}

// Client is one multiplexed WebSocket connection to an authority. All
// methods are safe for concurrent use: many goroutines can issue
// commands over one connection, and a writer goroutine coalesces their
// frames into shared flushes. With DialOptions.Reconnect the client is
// self-healing: the connection may die and be re-dialed underneath the
// callers, whose session refs stay valid.
type Client struct {
	Shards int // shard loops on the serving authority (from the first Welcome)

	opt  DialOptions
	host string
	path string

	done chan struct{}
	once sync.Once

	mu           sync.Mutex
	cause        error
	conn         *clientConn   // nil while disconnected
	ready        chan struct{} // closed while the current conn is usable
	reconnecting bool
	pending      map[uint64]chan clientReply
	sessions     map[uint64]*clientSession // by client ref
	byServerRef  map[uint64]*clientSession
	nextReq      uint64
	nextRef      uint64
	bufs         [][]byte

	rng prng.Source // backoff jitter; only the reconnect manager draws

	reconnects atomic.Uint64
	resumed    atomic.Uint64
	deduped    atomic.Uint64
}

type clientReply struct {
	msg any
	err error
}

// Dial connects and performs the protocol handshake with default
// options (10s connect/handshake timeouts, no reconnect, no keepalive).
// rawURL accepts ws://, wss:// is not supported (no TLS in this
// deployment), and for convenience http:// URLs (e.g. a httptest server
// base) are rewritten.
func Dial(rawURL string) (*Client, error) {
	return DialWith(rawURL, DialOptions{})
}

// DialWith connects with explicit options.
func DialWith(rawURL string, opt DialOptions) (*Client, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("hub: dial: %w", err)
	}
	switch u.Scheme {
	case "ws", "http":
	default:
		return nil, fmt.Errorf("hub: dial: unsupported scheme %q", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	path := u.Path
	if path == "" || path == "/" {
		path = "/ws"
	}
	opt.withDefaults()

	c := &Client{
		opt:         opt,
		host:        host,
		path:        path,
		done:        make(chan struct{}),
		ready:       make(chan struct{}),
		pending:     make(map[uint64]chan clientReply),
		sessions:    make(map[uint64]*clientSession),
		byServerRef: make(map[uint64]*clientSession),
	}
	// Domain-separation label for the jitter stream ("hubclint" as
	// bytes), so a chaos seed shared with a fault plan stays independent.
	c.rng.Seed(prng.Mix(opt.Seed, 0x687562636c696e74))

	conn, shards, err := c.dialConn(false)
	if err != nil {
		return nil, err
	}
	c.Shards = shards
	c.conn = conn
	close(c.ready)
	c.startConn(conn)
	return c, nil
}

// dialConn establishes one physical connection: TCP dial, optional fault
// wrapper, HTTP upgrade, and the Hello/Welcome exchange.
func (c *Client) dialConn(reconnect bool) (*clientConn, int, error) {
	raw, err := net.DialTimeout("tcp", c.host, c.opt.ConnectTimeout)
	if err != nil {
		return nil, 0, fmt.Errorf("hub: dial: %w", err)
	}
	if c.opt.WrapConn != nil {
		raw = c.opt.WrapConn(raw)
	}
	ws, err := clientHandshake(raw, c.host, c.path, c.opt.HandshakeTimeout)
	if err != nil {
		raw.Close()
		return nil, 0, err
	}
	var flags uint64
	if reconnect {
		flags |= wire.FlagReconnect
	}
	if err := ws.WriteMessage(opBinary, wire.AppendHello(nil, wire.Version, flags)); err != nil {
		ws.Close()
		return nil, 0, fmt.Errorf("hub: handshake: %w", err)
	}
	ws.SetReadDeadline(time.Now().Add(c.opt.HandshakeTimeout))
	op, payload, err := ws.ReadMessage()
	if err != nil || op != opBinary {
		ws.Close()
		return nil, 0, fmt.Errorf("hub: handshake: no welcome: %v", err)
	}
	dec := wire.NewDecoder(payload)
	if dec.Byte() != wire.MsgWelcome {
		ws.Close()
		return nil, 0, errors.New("hub: handshake: unexpected first message")
	}
	welcome, err := wire.DecodeWelcome(&dec)
	if err != nil || welcome.Version != wire.Version {
		ws.Close()
		return nil, 0, errors.New("hub: handshake: protocol version mismatch")
	}
	ws.SetReadDeadline(time.Time{})
	conn := &clientConn{
		ws:       ws,
		outbox:   make(chan []byte, 256),
		down:     make(chan struct{}),
		readDone: make(chan struct{}),
	}
	return conn, int(welcome.Shards), nil
}

func (c *Client) startConn(conn *clientConn) {
	go c.readLoop(conn)
	go c.writeLoop(conn)
	if c.opt.PingInterval > 0 {
		go c.keepalive(conn)
	}
}

func clientHandshake(conn net.Conn, host, path string, timeout time.Duration) (*WSConn, error) {
	var keyRaw [16]byte
	if _, err := cryptoRand.Read(keyRaw[:]); err != nil {
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyRaw[:])
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write([]byte(req)); err != nil {
		return nil, fmt.Errorf("hub: handshake request: %w", err)
	}
	br := newConnReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		return nil, fmt.Errorf("hub: handshake response: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		return nil, fmt.Errorf("hub: handshake refused: %s", resp.Status)
	}
	if resp.Header.Get("Sec-WebSocket-Accept") != acceptKey(key) {
		return nil, errors.New("hub: handshake: bad Sec-WebSocket-Accept")
	}
	conn.SetDeadline(time.Time{})
	return newWSConn(conn, br, true, 0), nil
}

func (c *Client) getBuf() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.bufs); n > 0 {
		b := c.bufs[n-1]
		c.bufs = c.bufs[:n-1]
		return b[:0]
	}
	return make([]byte, 0, 256)
}

func (c *Client) putBuf(b []byte) {
	if cap(b) > 1<<16 {
		return
	}
	c.mu.Lock()
	if len(c.bufs) < 64 {
		c.bufs = append(c.bufs, b)
	}
	c.mu.Unlock()
}

func (c *Client) closedErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cause != nil {
		return c.cause
	}
	return ErrClientClosed
}

// lostErr shapes the error pending commands see when a connection dies:
// retryable (ErrConnLost) for self-healing clients, the raw cause for
// plain ones (which are about to close permanently anyway).
func (c *Client) lostErr(cause error) error {
	if !c.opt.Reconnect || errors.Is(cause, ErrConnLost) {
		return cause
	}
	return fmt.Errorf("%w: %v", ErrConnLost, cause)
}

func (c *Client) failPending(err error) {
	c.mu.Lock()
	pend := c.pending
	c.pending = make(map[uint64]chan clientReply)
	c.mu.Unlock()
	for _, ch := range pend {
		ch <- clientReply{err: err}
	}
}

func (c *Client) dropPending(reqID uint64) {
	c.mu.Lock()
	delete(c.pending, reqID)
	c.mu.Unlock()
}

func (c *Client) closeWith(err error) {
	c.once.Do(func() {
		c.mu.Lock()
		c.cause = err
		conn := c.conn
		c.mu.Unlock()
		close(c.done)
		if conn != nil {
			conn.fail(err)
		}
		c.failPending(err)
	})
}

// Close tears the connection down; outstanding commands fail with
// ErrClientClosed.
func (c *Client) Close() error {
	c.closeWith(ErrClientClosed)
	return nil
}

// Counters reports the client's self-healing tallies.
func (c *Client) Counters() ClientCounters {
	return ClientCounters{
		Reconnects:           c.reconnects.Load(),
		ResumedSubscriptions: c.resumed.Load(),
		DedupedRounds:        c.deduped.Load(),
	}
}

// connLost declares conn dead. Pending commands fail (retryably, for a
// self-healing client); a plain client closes permanently, a
// self-healing one hands off to the reconnect manager.
func (c *Client) connLost(conn *clientConn, cause error) {
	conn.fail(cause)
	select {
	case <-c.done:
		return
	default:
	}
	c.mu.Lock()
	if c.conn != conn {
		c.mu.Unlock()
		return
	}
	c.conn = nil
	select {
	case <-c.ready:
		// The gate was open: re-arm it so commands wait for the next
		// connection instead of racing a dead one.
		c.ready = make(chan struct{})
	default:
	}
	start := c.opt.Reconnect && !c.reconnecting
	if start {
		c.reconnecting = true
	}
	c.mu.Unlock()
	c.failPending(c.lostErr(cause))
	if !c.opt.Reconnect {
		c.closeWith(cause)
		return
	}
	if start {
		go c.reconnectLoop(conn, cause)
	}
}

// jitter spreads a backoff delay over [d/2, d] using the seeded PRNG.
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := uint64(d / 2)
	return time.Duration(half + c.rng.Uint64()%(half+1))
}

// reconnectLoop re-dials with exponential backoff, re-attaches every
// known session, resumes subscriptions, and finally opens the command
// gate. It is the only goroutine rebuilding connection state, so the
// swap is race-free: the old read goroutine is drained before any
// session state is touched.
func (c *Client) reconnectLoop(dead *clientConn, cause error) {
	<-dead.readDone
	backoff := c.opt.BackoffMin
	for attempt := 1; ; attempt++ {
		if c.opt.MaxAttempts > 0 && attempt > c.opt.MaxAttempts {
			c.closeWith(fmt.Errorf("hub: reconnect: giving up after %d attempts: %w", c.opt.MaxAttempts, cause))
			return
		}
		select {
		case <-time.After(c.jitter(backoff)):
		case <-c.done:
			return
		}
		if backoff *= 2; backoff > c.opt.BackoffMax {
			backoff = c.opt.BackoffMax
		}
		conn, _, err := c.dialConn(true)
		if err != nil {
			cause = err
			continue
		}
		c.mu.Lock()
		select {
		case <-c.done:
			c.mu.Unlock()
			conn.fail(ErrClientClosed)
			return
		default:
		}
		c.conn = conn
		c.mu.Unlock()
		c.startConn(conn)
		if err := c.rebind(conn); err != nil {
			cause = err
			c.connLost(conn, err)
			<-conn.readDone
			continue
		}
		c.reconnects.Add(1)
		c.mu.Lock()
		if c.conn == conn {
			c.reconnecting = false
			close(c.ready)
			c.mu.Unlock()
			return
		}
		// The fresh connection died between rebind and the gate opening;
		// keep the manager role and try again.
		c.mu.Unlock()
		<-conn.readDone
	}
}

// rebind re-attaches every known session by id on a fresh connection and
// re-subscribes with resume tokens. A connection-level error aborts (the
// manager redials); a per-session remote refusal is recorded on the
// session so its commands fail with the typed error.
func (c *Client) rebind(conn *clientConn) error {
	c.mu.Lock()
	sessions := make([]*clientSession, 0, len(c.sessions))
	for _, s := range c.sessions {
		sessions = append(sessions, s)
	}
	clear(c.byServerRef)
	c.mu.Unlock()

	for _, s := range sessions {
		rid := c.reqID()
		msg, err := c.roundTripOn(conn, rid, wire.AppendAttach(c.getBuf(), rid, s.id))
		if err != nil {
			var re *RemoteError
			if errors.As(err, &re) {
				c.mu.Lock()
				s.err = err
				c.mu.Unlock()
				continue
			}
			return err
		}
		created, ok := msg.(wire.Created)
		if !ok {
			return errors.New("hub: client: unexpected attach reply")
		}
		c.mu.Lock()
		s.err = nil
		s.serverRef = created.Ref
		sub := s.sub
		if sub != nil {
			// The server starts a fresh delta stream for a resumed
			// subscription, so reset the decoder with it. Publishing
			// these fields before the byServerRef entry exists keeps
			// them ordered ahead of any event delivery.
			sub.dec = wire.EventDecoder{}
			sub.resumed = true
		}
		c.byServerRef[created.Ref] = s
		c.mu.Unlock()
		// Deliberately NOT updating s.rounds from created.Rounds: the
		// watermark tracks what this client's caller has seen. A server
		// that is ahead means orphaned rounds, which the next Play
		// retrieves as deduplicated replays.
		if sub != nil {
			rid := c.reqID()
			_, err := c.roundTripOn(conn, rid,
				wire.AppendSubscribe(c.getBuf(), rid, created.Ref, sub.lastSeq+1))
			if err != nil {
				var re *RemoteError
				if !errors.As(err, &re) {
					return err
				}
				c.mu.Lock()
				s.err = err
				c.mu.Unlock()
				continue
			}
			c.resumed.Add(1)
		}
	}
	return nil
}

// awaitConn returns the current usable connection, waiting through any
// reconnect in progress.
func (c *Client) awaitConn() (*clientConn, error) {
	for {
		c.mu.Lock()
		conn, ready := c.conn, c.ready
		c.mu.Unlock()
		if conn != nil {
			select {
			case <-ready:
				return conn, nil
			default:
			}
		}
		select {
		case <-ready:
		case <-c.done:
			return nil, c.closedErr()
		}
	}
}

func (c *Client) writeLoop(conn *clientConn) {
	for {
		select {
		case b := <-conn.outbox:
			conn.ws.SetWriteDeadline(time.Now().Add(30 * time.Second))
			err := conn.ws.WriteMessageNoFlush(opBinary, b)
			c.putBuf(b)
			for err == nil {
				select {
				case b2 := <-conn.outbox:
					err = conn.ws.WriteMessageNoFlush(opBinary, b2)
					c.putBuf(b2)
					continue
				default:
				}
				break
			}
			if err == nil {
				err = conn.ws.Flush()
			}
			if err != nil {
				c.connLost(conn, fmt.Errorf("hub: client write: %w", err))
				return
			}
		case <-conn.down:
			return
		}
	}
}

// keepalive detects half-open connections: when a full interval passes
// with no frame from the server it pings; when a second passes still
// silent, the connection is torn down (and re-dialed when reconnect is
// enabled) instead of letting round trips hang forever.
func (c *Client) keepalive(conn *clientConn) {
	t := time.NewTicker(c.opt.PingInterval)
	defer t.Stop()
	last := conn.ws.Activity()
	pinged := false
	for {
		select {
		case <-t.C:
			act := conn.ws.Activity()
			if act != last {
				last, pinged = act, false
				continue
			}
			if !pinged {
				pinged = true
				conn.ws.SetWriteDeadline(time.Now().Add(c.opt.PingInterval))
				if err := conn.ws.WritePing(nil); err != nil {
					c.connLost(conn, fmt.Errorf("hub: keepalive ping: %w", err))
					return
				}
				continue
			}
			c.connLost(conn, fmt.Errorf("hub: keepalive: no traffic for %v", 2*c.opt.PingInterval))
			return
		case <-conn.down:
			return
		case <-c.done:
			return
		}
	}
}

func (c *Client) readLoop(conn *clientConn) {
	defer close(conn.readDone)
	var scratch wire.Result
	for {
		op, payload, err := conn.ws.ReadMessage()
		if err != nil {
			if errors.Is(err, ErrWSClosed) {
				err = ErrClientClosed
			}
			c.connLost(conn, err)
			return
		}
		if op != opBinary {
			continue
		}
		dec := wire.NewDecoder(payload)
		for dec.Len() > 0 {
			if err := c.dispatch(&dec, &scratch); err != nil {
				c.connLost(conn, err)
				return
			}
		}
	}
}

// dispatch routes one server message: replies resolve the pending
// round-trip by request id, pushes go to the subscription handler.
func (c *Client) dispatch(dec *wire.Decoder, scratch *wire.Result) error {
	switch typ := dec.Byte(); typ {
	case wire.MsgCreated:
		m, err := wire.DecodeCreated(dec)
		if err != nil {
			return err
		}
		c.resolve(m.ReqID, clientReply{msg: m})
	case wire.MsgResults:
		h, err := wire.DecodeResultsHeader(dec)
		if err != nil {
			return err
		}
		// Decode in place with one reusable scratch result; the waiter
		// only sees the count and the final result, so a 100k-session
		// load generator never allocates per round.
		var out PlayOutcome
		for {
			more, err := wire.DecodeResultItem(dec, scratch)
			if err != nil {
				return err
			}
			if !more {
				break
			}
			out.Completed++
		}
		out.Last = *scratch
		t, err := wire.DecodeResultsTrailer(dec)
		if err != nil {
			return err
		}
		out.Deduped = int(t.Deduped)
		if t.Deduped > 0 {
			c.deduped.Add(t.Deduped)
		}
		rep := clientReply{msg: out}
		if t.Code != wire.CodeOK {
			rep.err = &RemoteError{Code: t.Code, Detail: t.Detail}
			rep.msg = out // partial results still visible to the caller
		}
		c.resolve(h.ReqID, rep)
	case wire.MsgError:
		m, err := wire.DecodeError(dec)
		if err != nil {
			return err
		}
		c.resolve(m.ReqID, clientReply{err: &RemoteError{Code: m.Code, Detail: m.Detail}})
	case wire.MsgOK:
		m, err := wire.DecodeOK(dec)
		if err != nil {
			return err
		}
		c.resolve(m.ReqID, clientReply{msg: m})
	case wire.MsgStatsReply:
		reqID, st, err := wire.DecodeStatsReply(dec)
		if err != nil {
			return err
		}
		c.resolve(reqID, clientReply{msg: st})
	case wire.MsgSnapshotReply:
		m, err := wire.DecodeSnapshotReply(dec)
		if err != nil {
			return err
		}
		c.resolve(m.ReqID, clientReply{msg: m})
	case wire.MsgEvent:
		ref := dec.Uvarint()
		if err := dec.Err(); err != nil {
			return err
		}
		c.mu.Lock()
		var sub *clientSub
		if s := c.byServerRef[ref]; s != nil {
			sub = s.sub
		}
		c.mu.Unlock()
		if sub == nil {
			// Event for a ref we no longer track: skip by decoding with
			// a throwaway decoder (delta state is irrelevant once
			// unsubscribed).
			var dead wire.EventDecoder
			_, err := dead.Decode(dec)
			return err
		}
		ev, err := sub.dec.Decode(dec)
		if err != nil {
			return err
		}
		if ev.Seq > 0 && ev.Seq <= sub.lastSeq {
			// An event we already delivered before the disconnect
			// (e.g. a sticky election replayed on re-subscribe): drop
			// the duplicate, keeping the stream exactly-once.
			return nil
		}
		lag := sub.lag
		sub.lag = 0
		if sub.resumed {
			sub.resumed = false
			if sub.lastSeq > 0 && ev.Seq > sub.lastSeq+1 {
				// Events emitted while we were disconnected are gone;
				// report them as lag so the consumer knows the gap.
				lag += ev.Seq - sub.lastSeq - 1
			}
		}
		sub.lastSeq = ev.Seq
		if sub.handler != nil {
			sub.handler(ev, lag)
		}
	case wire.MsgLag:
		m, err := wire.DecodeLag(dec)
		if err != nil {
			return err
		}
		c.mu.Lock()
		if s := c.byServerRef[m.Ref]; s != nil && s.sub != nil {
			s.sub.lag += m.Dropped
		}
		c.mu.Unlock()
	default:
		return fmt.Errorf("hub: client: unexpected message type %#x", typ)
	}
	return nil
}

func (c *Client) resolve(reqID uint64, rep clientReply) {
	c.mu.Lock()
	ch := c.pending[reqID]
	delete(c.pending, reqID)
	c.mu.Unlock()
	if ch != nil {
		ch <- rep
	}
}

// roundTripOn sends an encoded command frame on conn and waits for its
// reply. A death of conn fails the round trip through the pending map.
func (c *Client) roundTripOn(conn *clientConn, reqID uint64, frame []byte) (any, error) {
	ch := make(chan clientReply, 1)
	c.mu.Lock()
	c.pending[reqID] = ch
	c.mu.Unlock()
	select {
	case conn.outbox <- frame:
	case <-conn.down:
		c.dropPending(reqID)
		c.putBuf(frame)
		return nil, c.lostErr(conn.err)
	case <-c.done:
		c.dropPending(reqID)
		c.putBuf(frame)
		return nil, c.closedErr()
	}
	select {
	case rep := <-ch:
		return rep.msg, rep.err
	case <-conn.down:
		// The connection died while we waited. Usually failPending
		// delivers the retryable error to ch, but a command that
		// registered its entry after the sweep (and still managed to
		// enqueue its frame into the dead connection's buffered outbox)
		// would wait forever — so watch the connection too, preferring a
		// reply resolved in the race.
		c.dropPending(reqID)
		select {
		case rep := <-ch:
			return rep.msg, rep.err
		default:
			return nil, c.lostErr(conn.err)
		}
	case <-c.done:
		c.dropPending(reqID)
		// A raced resolve may have delivered after done; prefer it.
		select {
		case rep := <-ch:
			return rep.msg, rep.err
		default:
			return nil, c.closedErr()
		}
	}
}

func (c *Client) reqID() uint64 {
	c.mu.Lock()
	c.nextReq++
	id := c.nextReq
	c.mu.Unlock()
	return id
}

// retryable reports whether err should be retried on a fresh connection.
func (c *Client) retryable(err error) bool {
	return c.opt.Reconnect && errors.Is(err, ErrConnLost)
}

func errUnknownRef() error {
	return &RemoteError{Code: wire.CodeNotFound, Detail: "unknown ref"}
}

func (c *Client) session(ref uint64) *clientSession {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessions[ref]
}

// sessionTarget resolves the current server-side ref of s, surfacing a
// recorded re-attach failure as the typed error the server reported.
func (c *Client) sessionTarget(s *clientSession) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.err != nil {
		return 0, s.err
	}
	return s.serverRef, nil
}

// register binds a fresh client-stable ref to a session the server just
// acknowledged.
func (c *Client) register(created wire.Created) *clientSession {
	s := &clientSession{id: created.ID, serverRef: created.Ref}
	s.rounds.Store(created.Rounds)
	c.mu.Lock()
	c.nextRef++
	s.ref = c.nextRef
	c.sessions[s.ref] = s
	c.byServerRef[created.Ref] = s
	c.mu.Unlock()
	return s
}

// Create hosts a session from a JSON CreateSessionRequest document and
// returns its client-stable ref and canonical id. Create is not blindly
// retried on a lost connection (it is not idempotent); callers that know
// the session id can recover with Attach, treating a CodeExists error
// from a repeated Create the same way.
func (c *Client) Create(spec []byte) (ref uint64, id string, err error) {
	conn, err := c.awaitConn()
	if err != nil {
		return 0, "", err
	}
	rid := c.reqID()
	msg, err := c.roundTripOn(conn, rid, wire.AppendCreate(c.getBuf(), rid, spec))
	if err != nil {
		return 0, "", err
	}
	created, ok := msg.(wire.Created)
	if !ok {
		return 0, "", errors.New("hub: client: unexpected create reply")
	}
	s := c.register(created)
	return s.ref, created.ID, nil
}

// Attach binds an existing session (recovering it from the durable store
// if needed) and returns its ref. Attach is idempotent and retried
// across reconnects.
func (c *Client) Attach(id string) (ref uint64, err error) {
	for {
		conn, err := c.awaitConn()
		if err != nil {
			return 0, err
		}
		rid := c.reqID()
		msg, err := c.roundTripOn(conn, rid, wire.AppendAttach(c.getBuf(), rid, id))
		if err != nil {
			if c.retryable(err) {
				continue
			}
			return 0, err
		}
		created, ok := msg.(wire.Created)
		if !ok {
			return 0, errors.New("hub: client: unexpected attach reply")
		}
		s := c.register(created)
		return s.ref, nil
	}
}

// Play runs rounds plays on ref. For a self-healing client, a play
// interrupted by a lost connection is retried with the session's round
// watermark: the server replays the rounds that completed before the
// cut (deduplicated, from its journal) and plays only the remainder
// fresh, so the caller sees every round's result exactly once. Plays on
// one session are assumed not to run concurrently when reconnect is
// enabled.
func (c *Client) Play(ref uint64, rounds int) (PlayOutcome, error) {
	return c.playWith(ref, rounds, wire.AppendPlay)
}

// PlayBatch is Play over the batched opcode: the server executes the
// rounds as one PlayN call and journals them as a single batch WAL
// record. Retry, watermark dedup, and the reply shape are identical to
// Play — only the server-side execution and journaling differ.
func (c *Client) PlayBatch(ref uint64, rounds int) (PlayOutcome, error) {
	return c.playWith(ref, rounds, wire.AppendPlayBatch)
}

// playWith is the shared watermark-retry loop behind Play and PlayBatch;
// appendCmd encodes the chosen play opcode.
func (c *Client) playWith(ref uint64, rounds int, appendCmd func(dst []byte, reqID, ref, rounds, expect uint64) []byte) (PlayOutcome, error) {
	s := c.session(ref)
	if s == nil {
		return PlayOutcome{}, errUnknownRef()
	}
	want := uint64(rounds)
	if rounds <= 0 {
		want = 1
	}
	target := s.rounds.Load() + want
	var total PlayOutcome
	for {
		cur := s.rounds.Load()
		if cur >= target {
			return total, nil
		}
		conn, err := c.awaitConn()
		if err != nil {
			return total, err
		}
		serverRef, serr := c.sessionTarget(s)
		if serr != nil {
			return total, serr
		}
		var expect uint64
		if c.opt.Reconnect {
			expect = cur + 1
		}
		rid := c.reqID()
		msg, err := c.roundTripOn(conn, rid,
			appendCmd(c.getBuf(), rid, serverRef, target-cur, expect))
		out, _ := msg.(PlayOutcome)
		if out.Completed > 0 {
			total.Completed += out.Completed
			total.Deduped += out.Deduped
			total.Last = out.Last
			s.rounds.Store(uint64(out.Last.Round) + 1)
		}
		if err != nil {
			if c.retryable(err) {
				continue
			}
			return total, err
		}
		if out.Completed == 0 {
			// A successful reply that advanced nothing: don't spin.
			return total, nil
		}
	}
}

// Subscribe starts event delivery for ref. The handler runs on the
// connection's read goroutine: it must not block and must not call back
// into the client synchronously. A self-healing client re-establishes
// the subscription after every reconnect, resuming from the last seen
// event sequence number; events missed while disconnected surface as
// lag on the first resumed delivery.
func (c *Client) Subscribe(ref uint64, handler EventHandler) error {
	s := c.session(ref)
	if s == nil {
		return errUnknownRef()
	}
	ours := &clientSub{handler: handler}
	c.mu.Lock()
	if s.sub != nil {
		c.mu.Unlock()
		return errors.New("hub: client: already subscribed")
	}
	s.sub = ours
	c.mu.Unlock()

	for attempt := 0; ; attempt++ {
		conn, err := c.awaitConn()
		if err != nil {
			return err
		}
		serverRef, serr := c.sessionTarget(s)
		if serr != nil {
			c.unregisterSub(s, ours)
			return serr
		}
		rid := c.reqID()
		_, err = c.roundTripOn(conn, rid, wire.AppendSubscribe(c.getBuf(), rid, serverRef, 0))
		if err == nil {
			return nil
		}
		if c.retryable(err) {
			continue
		}
		var re *RemoteError
		if attempt > 0 && errors.As(err, &re) && re.Code == wire.CodeExists {
			// A reconnect's rebind re-subscribed for us between
			// attempts; the subscription is live.
			return nil
		}
		c.unregisterSub(s, ours)
		return err
	}
}

func (c *Client) unregisterSub(s *clientSession, ours *clientSub) {
	c.mu.Lock()
	if s.sub == ours {
		s.sub = nil
	}
	c.mu.Unlock()
}

// Unsubscribe stops event delivery for ref.
func (c *Client) Unsubscribe(ref uint64) error {
	s := c.session(ref)
	if s == nil {
		return errUnknownRef()
	}
	c.mu.Lock()
	s.sub = nil
	c.mu.Unlock()
	for {
		conn, err := c.awaitConn()
		if err != nil {
			return err
		}
		serverRef, serr := c.sessionTarget(s)
		if serr != nil {
			return serr
		}
		rid := c.reqID()
		_, err = c.roundTripOn(conn, rid, wire.AppendRefReq(c.getBuf(), wire.MsgUnsubscribe, rid, serverRef))
		if c.retryable(err) {
			// After a reconnect the fresh connection has no server-side
			// subscription and rebind skips unsubscribed sessions, so
			// the retry is a harmless confirmation.
			continue
		}
		return err
	}
}

// Stats fetches driver stats for ref (idempotent; retried across
// reconnects).
func (c *Client) Stats(ref uint64) (wire.Stats, error) {
	s := c.session(ref)
	if s == nil {
		return wire.Stats{}, errUnknownRef()
	}
	for {
		conn, err := c.awaitConn()
		if err != nil {
			return wire.Stats{}, err
		}
		serverRef, serr := c.sessionTarget(s)
		if serr != nil {
			return wire.Stats{}, serr
		}
		rid := c.reqID()
		msg, err := c.roundTripOn(conn, rid, wire.AppendRefReq(c.getBuf(), wire.MsgStats, rid, serverRef))
		if err != nil {
			if c.retryable(err) {
				continue
			}
			return wire.Stats{}, err
		}
		st, ok := msg.(wire.Stats)
		if !ok {
			return wire.Stats{}, errors.New("hub: client: unexpected stats reply")
		}
		return st, nil
	}
}

// Snapshot captures (and persists, when the authority is durable) the
// session snapshot and returns its canonical digest (idempotent; retried
// across reconnects).
func (c *Client) Snapshot(ref uint64) (wire.SnapshotReply, error) {
	s := c.session(ref)
	if s == nil {
		return wire.SnapshotReply{}, errUnknownRef()
	}
	for {
		conn, err := c.awaitConn()
		if err != nil {
			return wire.SnapshotReply{}, err
		}
		serverRef, serr := c.sessionTarget(s)
		if serr != nil {
			return wire.SnapshotReply{}, serr
		}
		rid := c.reqID()
		msg, err := c.roundTripOn(conn, rid, wire.AppendRefReq(c.getBuf(), wire.MsgSnapshot, rid, serverRef))
		if err != nil {
			if c.retryable(err) {
				continue
			}
			return wire.SnapshotReply{}, err
		}
		snap, ok := msg.(wire.SnapshotReply)
		if !ok {
			return wire.SnapshotReply{}, errors.New("hub: client: unexpected snapshot reply")
		}
		return snap, nil
	}
}

// CloseSession closes and unregisters the session bound to ref. A retry
// that finds the session already gone treats it as success (the first
// attempt applied before the connection died).
func (c *Client) CloseSession(ref uint64) error {
	s := c.session(ref)
	if s == nil {
		return errUnknownRef()
	}
	for attempt := 0; ; attempt++ {
		conn, err := c.awaitConn()
		if err != nil {
			return err
		}
		serverRef, serr := c.sessionTarget(s)
		if serr != nil {
			return serr
		}
		rid := c.reqID()
		_, err = c.roundTripOn(conn, rid, wire.AppendRefReq(c.getBuf(), wire.MsgCloseSession, rid, serverRef))
		if err != nil {
			if c.retryable(err) {
				continue
			}
			var re *RemoteError
			tolerated := attempt > 0 && c.opt.Reconnect &&
				errors.As(err, &re) && re.Code == wire.CodeNotFound
			if !tolerated {
				return err
			}
		}
		c.mu.Lock()
		delete(c.sessions, s.ref)
		if c.byServerRef[s.serverRef] == s {
			delete(c.byServerRef, s.serverRef)
		}
		s.sub = nil
		c.mu.Unlock()
		return nil
	}
}
