package hub

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gameauthority/internal/metrics"
	"gameauthority/internal/wire"
)

// killSwitch records every raw connection a client dials (via WrapConn)
// so tests can cut them mid-stream, simulating a dropped network.
type killSwitch struct {
	mu    sync.Mutex
	conns []net.Conn
}

func (k *killSwitch) wrap(c net.Conn) net.Conn {
	k.mu.Lock()
	k.conns = append(k.conns, c)
	k.mu.Unlock()
	return c
}

func (k *killSwitch) killAll() {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, c := range k.conns {
		c.Close()
	}
	k.conns = k.conns[:0]
}

// newHealingClient stands up a hub over a fake backend and dials it with
// reconnect enabled and fast backoff.
func newHealingClient(t *testing.T, opt DialOptions) (*fakeBackend, *killSwitch, *Client) {
	t.Helper()
	backend := newFakeBackend()
	shards := NewShards(2)
	t.Cleanup(shards.Close)
	var counters metrics.Counters
	srv := httptest.NewServer(New(backend, Options{Shards: shards, Counters: &counters}))
	t.Cleanup(srv.Close)
	ks := &killSwitch{}
	opt.WrapConn = ks.wrap
	if opt.BackoffMin == 0 {
		opt.BackoffMin = time.Millisecond
	}
	if opt.BackoffMax == 0 {
		opt.BackoffMax = 10 * time.Millisecond
	}
	client, err := DialWith(srv.URL, opt)
	if err != nil {
		t.Fatalf("DialWith: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	return backend, ks, client
}

// TestClientReconnectResume is the self-healing happy path: a client
// with live sessions and a subscription loses its connection, reconnects,
// re-attaches by id, resumes the event stream, and keeps playing with no
// round skipped or repeated.
func TestClientReconnectResume(t *testing.T) {
	_, ks, client := newHealingClient(t, DialOptions{Reconnect: true, Seed: 7})

	ref, id, err := client.Create([]byte(`{"id":"heal-1"}`))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if id != "heal-1" {
		t.Fatalf("id = %q", id)
	}
	var seqMu sync.Mutex
	var seqs []uint64
	if err := client.Subscribe(ref, func(ev wire.Event, lag uint64) {
		seqMu.Lock()
		seqs = append(seqs, ev.Seq)
		seqMu.Unlock()
	}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	for r := 0; r < 3; r++ {
		out, err := client.Play(ref, 1)
		if err != nil {
			t.Fatalf("Play %d: %v", r, err)
		}
		if out.Last.Round != r {
			t.Fatalf("round %d acknowledged as %d", r, out.Last.Round)
		}
	}

	ks.killAll()

	// Commands issued while the connection is down retry transparently.
	st, err := client.Stats(ref)
	if err != nil {
		t.Fatalf("Stats across reconnect: %v", err)
	}
	if st.Rounds != 3 {
		t.Fatalf("Stats.Rounds = %d, want 3", st.Rounds)
	}
	for r := 3; r < 6; r++ {
		out, err := client.Play(ref, 1)
		if err != nil {
			t.Fatalf("Play %d after cut: %v", r, err)
		}
		if out.Last.Round != r {
			t.Fatalf("after reconnect: round %d acknowledged as %d", r, out.Last.Round)
		}
	}
	snap, err := client.Snapshot(ref)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if snap.Rounds != 6 {
		t.Fatalf("snapshot rounds = %d, want 6", snap.Rounds)
	}

	cc := client.Counters()
	if cc.Reconnects == 0 {
		t.Fatal("no reconnect counted")
	}
	if cc.ResumedSubscriptions == 0 {
		t.Fatal("no resumed subscription counted")
	}

	// The event stream stays strictly monotone across the cut (events in
	// flight during the kill may be lost; they must not repeat).
	deadline := time.Now().Add(2 * time.Second)
	for {
		seqMu.Lock()
		n := len(seqs)
		seqMu.Unlock()
		if n >= 4 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	seqMu.Lock()
	defer seqMu.Unlock()
	if len(seqs) == 0 {
		t.Fatal("no events delivered")
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("event seq regressed: %d after %d", seqs[i], seqs[i-1])
		}
	}

	if err := client.Unsubscribe(ref); err != nil {
		t.Fatalf("Unsubscribe: %v", err)
	}
	if err := client.CloseSession(ref); err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
}

// TestClientPlayDedup pins the watermark protocol: when the server is
// ahead of the client (the original play applied but its ack was lost),
// a retried play returns the orphaned round as a deduplicated replay
// instead of double-playing.
func TestClientPlayDedup(t *testing.T) {
	backend, _, client := newHealingClient(t, DialOptions{Reconnect: true, Seed: 3})
	ref, id, err := client.Create([]byte(`{"id":"dedup-1"}`))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := client.Play(ref, 2); err != nil {
		t.Fatalf("Play: %v", err)
	}

	// Advance the session behind the client's back: the server is now one
	// round ahead, exactly the state a lost ack leaves.
	backend.mu.Lock()
	h := backend.sessions[id]
	backend.mu.Unlock()
	if _, err := h.Play(context.Background()); err != nil {
		t.Fatal(err)
	}

	out, err := client.Play(ref, 1)
	if err != nil {
		t.Fatalf("retried Play: %v", err)
	}
	if out.Completed != 1 || out.Deduped != 1 {
		t.Fatalf("outcome = %+v, want 1 completed round deduped", out)
	}
	if out.Last.Round != 2 {
		t.Fatalf("replayed round %d, want 2", out.Last.Round)
	}
	if cc := client.Counters(); cc.DedupedRounds != 1 {
		t.Fatalf("DedupedRounds = %d, want 1", cc.DedupedRounds)
	}
	// The next play runs fresh from the reconciled watermark.
	out, err = client.Play(ref, 1)
	if err != nil || out.Last.Round != 3 || out.Deduped != 0 {
		t.Fatalf("follow-up play = %+v, %v", out, err)
	}
}

// TestClientMidFrameDisconnect covers the plain (non-reconnect) client: a
// connection cut during pipelined round trips fails the in-flight
// commands and poisons the client permanently.
func TestClientMidFrameDisconnect(t *testing.T) {
	_, ks, client := newHealingClient(t, DialOptions{})
	ref, _, err := client.Create([]byte(`{"id":"cut-1"}`))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				if _, err := client.Play(ref, 1); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	ks.killAll()
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("pipelined play %d did not fail", i)
		}
		if errors.Is(err, ErrConnLost) {
			t.Fatalf("plain client leaked retryable error: %v", err)
		}
	}
	// The client is closed for good now.
	if _, _, err := client.Create([]byte(`{"id":"cut-2"}`)); err == nil {
		t.Fatal("create on a dead plain client succeeded")
	}
}

// TestClientReattachFailure: when a session disappears server-side while
// the client is disconnected, the reconnect re-attach records the typed
// refusal on that session — its commands fail fast with the server's
// error while other sessions heal normally.
func TestClientReattachFailure(t *testing.T) {
	backend, ks, client := newHealingClient(t, DialOptions{Reconnect: true, Seed: 11})
	refGone, idGone, err := client.Create([]byte(`{"id":"gone-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	refLive, _, err := client.Create([]byte(`{"id":"live-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	backend.mu.Lock()
	delete(backend.sessions, idGone)
	backend.mu.Unlock()
	ks.killAll()

	// The surviving session heals.
	if _, err := client.Play(refLive, 1); err != nil {
		t.Fatalf("surviving session: %v", err)
	}
	// The removed one reports the server's refusal, typed.
	_, err = client.Play(refGone, 1)
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeNotFound {
		t.Fatalf("vanished session error = %v, want CodeNotFound", err)
	}
	if re.Error() == "" {
		t.Fatal("empty RemoteError message")
	}
	if err := client.Subscribe(refGone, func(wire.Event, uint64) {}); err == nil {
		t.Fatal("subscribe on vanished session succeeded")
	}
}

// TestClientHandshakeRejection: a server that is not a hub rejects the
// upgrade and the dial fails cleanly.
func TestClientHandshakeRejection(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	}))
	defer srv.Close()
	if _, err := Dial(srv.URL); err == nil {
		t.Fatal("dial of a non-hub server succeeded")
	}
}

// TestClientHandshakeTimeout: a listener that accepts and then stalls
// must not hang the dial past the handshake deadline.
func TestClientHandshakeTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close() // accept and say nothing
		}
	}()
	start := time.Now()
	_, err = DialWith("ws://"+ln.Addr().String()+"/ws", DialOptions{HandshakeTimeout: 50 * time.Millisecond})
	if err == nil {
		t.Fatal("dial of a stalled server succeeded")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("handshake timeout took %v", d)
	}
}

// muteConn passes writes through but, once muted, blackholes reads until
// the connection is closed — a half-open link only the keepalive probe
// can detect.
type muteConn struct {
	net.Conn
	muted atomic.Bool
	dead  chan struct{}
	once  sync.Once
}

func (m *muteConn) Read(b []byte) (int, error) {
	n, err := m.Conn.Read(b)
	if m.muted.Load() {
		// Swallow whatever arrived (even a reply already in flight when
		// the mute flipped) and stall until the connection is torn down.
		<-m.dead
		return 0, net.ErrClosed
	}
	return n, err
}

func (m *muteConn) Close() error {
	m.once.Do(func() { close(m.dead) })
	return m.Conn.Close()
}

// TestClientKeepaliveKillsSilentConn: after the link goes half-open the
// client pings, hears nothing, and tears the connection down instead of
// hanging forever.
func TestClientKeepaliveKillsSilentConn(t *testing.T) {
	backend := newFakeBackend()
	shards := NewShards(1)
	t.Cleanup(shards.Close)
	srv := httptest.NewServer(New(backend, Options{Shards: shards}))
	t.Cleanup(srv.Close)

	var mu sync.Mutex
	var conns []*muteConn
	client, err := DialWith(srv.URL, DialOptions{
		PingInterval: 20 * time.Millisecond,
		WrapConn: func(c net.Conn) net.Conn {
			mc := &muteConn{Conn: c, dead: make(chan struct{})}
			mu.Lock()
			conns = append(conns, mc)
			mu.Unlock()
			return mc
		},
	})
	if err != nil {
		t.Fatalf("DialWith: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	ref, _, err := client.Create([]byte(`{"id":"mute-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	for _, c := range conns {
		c.muted.Store(true)
	}
	mu.Unlock()
	done := make(chan error, 1)
	go func() {
		_, err := client.Play(ref, 1)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("play on a half-open connection succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("keepalive did not kill the half-open connection")
	}
}

// TestClientBadURL covers dial argument validation.
func TestClientBadURL(t *testing.T) {
	for _, raw := range []string{"://nope", "ftp://host/ws", "http://"} {
		if _, err := Dial(raw); err == nil {
			t.Fatalf("Dial(%q) succeeded", raw)
		}
	}
}

// TestClientUnknownRef covers command validation against refs that were
// never issued.
func TestClientUnknownRef(t *testing.T) {
	_, _, client := newHealingClient(t, DialOptions{Reconnect: true})
	var re *RemoteError
	if _, err := client.Play(999, 1); !errors.As(err, &re) || re.Code != wire.CodeNotFound {
		t.Fatalf("Play(unknown) = %v", err)
	}
	if _, err := client.Stats(999); !errors.As(err, &re) {
		t.Fatalf("Stats(unknown) = %v", err)
	}
	if _, err := client.Snapshot(999); !errors.As(err, &re) {
		t.Fatalf("Snapshot(unknown) = %v", err)
	}
	if err := client.Subscribe(999, func(wire.Event, uint64) {}); !errors.As(err, &re) {
		t.Fatalf("Subscribe(unknown) = %v", err)
	}
	if err := client.Unsubscribe(999); !errors.As(err, &re) {
		t.Fatalf("Unsubscribe(unknown) = %v", err)
	}
	if err := client.CloseSession(999); !errors.As(err, &re) {
		t.Fatalf("CloseSession(unknown) = %v", err)
	}
}

// TestClientReconnectGivesUp: MaxAttempts bounds the redial loop; when
// the server is gone for good the client closes with the dial error and
// pending commands fail permanently.
func TestClientReconnectGivesUp(t *testing.T) {
	backend := newFakeBackend()
	shards := NewShards(1)
	t.Cleanup(shards.Close)
	srv := httptest.NewServer(New(backend, Options{Shards: shards}))
	ks := &killSwitch{}
	client, err := DialWith(srv.URL, DialOptions{
		Reconnect:   true,
		MaxAttempts: 2,
		BackoffMin:  time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		WrapConn:    ks.wrap,
	})
	if err != nil {
		t.Fatalf("DialWith: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	ref, _, err := client.Create([]byte(`{"id":"doom-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	srv.Close() // server gone for good
	ks.killAll()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err = client.Play(ref, 1); err != nil && !errors.Is(err, ErrConnLost) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never gave up reconnecting")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if errors.Is(err, ErrConnLost) {
		t.Fatalf("terminal error is still retryable: %v", err)
	}
}

// TestClientPlayPartialBatch: a batch that fails mid-way delivers the
// completed prefix alongside the typed error, and the watermark reflects
// it so the next play resumes exactly where the failure hit.
func TestClientPlayPartialBatch(t *testing.T) {
	backend, _, client := newHealingClient(t, DialOptions{Reconnect: true, Seed: 13})
	ref, id, err := client.Create([]byte(`{"id":"partial-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	backend.mu.Lock()
	h := backend.sessions[id]
	h.playErr = Coded{Code: wire.CodeInternal, Err: errors.New("blown gasket")}
	h.failFrom = 2
	backend.mu.Unlock()

	out, err := client.Play(ref, 5)
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeInternal {
		t.Fatalf("partial batch error = %v, want CodeInternal", err)
	}
	if out.Completed != 2 || out.Last.Round != 1 {
		t.Fatalf("partial outcome = %+v, want rounds 0-1 delivered", out)
	}

	backend.mu.Lock()
	h.playErr = nil
	backend.mu.Unlock()
	out, err = client.Play(ref, 1)
	if err != nil || out.Last.Round != 2 {
		t.Fatalf("resume after partial batch = %+v, %v", out, err)
	}
}

// TestClientSurvivesRepeatedCuts hammers the reconnect machinery: the
// connection is cut over and over while sessions play, and every round
// must still be acknowledged exactly once, in order.
func TestClientSurvivesRepeatedCuts(t *testing.T) {
	_, ks, client := newHealingClient(t, DialOptions{Reconnect: true, Seed: 17})
	const sessions = 4
	refs := make([]uint64, sessions)
	for i := range refs {
		ref, _, err := client.Create([]byte(fmt.Sprintf(`{"id":"storm-%d"}`, i)))
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
		if err := client.Subscribe(ref, func(wire.Event, uint64) {}); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var cutter sync.WaitGroup
	cutter.Add(1)
	go func() {
		defer cutter.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(3 * time.Millisecond):
				ks.killAll()
			}
		}
	}()
	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for i, ref := range refs {
		wg.Add(1)
		go func(i int, ref uint64) {
			defer wg.Done()
			for r := 0; r < 25; {
				out, err := client.Play(ref, 1)
				if out.Completed > 0 {
					r += out.Completed
					if out.Last.Round != r-1 {
						errCh <- fmt.Errorf("session %d: round %d acknowledged as %d", i, r-1, out.Last.Round)
						return
					}
				}
				if err != nil && !errors.Is(err, ErrConnLost) {
					errCh <- fmt.Errorf("session %d: %w", i, err)
					return
				}
			}
		}(i, ref)
	}
	wg.Wait()
	close(stop)
	cutter.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	for _, ref := range refs {
		st, err := client.Stats(ref)
		if err != nil {
			t.Fatal(err)
		}
		if st.Rounds != 25 {
			t.Fatalf("ref %d converged at %d rounds, want 25", ref, st.Rounds)
		}
	}
}

// TestCodedUnwrap pins the error-chain plumbing servers rely on to map
// backend errors to wire codes.
func TestCodedUnwrap(t *testing.T) {
	base := errors.New("inner cause")
	err := Coded{Code: wire.CodeInternal, Err: base}
	if !errors.Is(err, base) {
		t.Fatal("Coded does not unwrap to its cause")
	}
	if err.Error() == "" {
		t.Fatal("empty Coded message")
	}
}

// TestClientCreateAfterCutAttach: the documented Create recovery — when a
// create's ack is lost the caller re-attaches by id — lands on the same
// session.
func TestClientCreateAfterCutAttach(t *testing.T) {
	_, _, client := newHealingClient(t, DialOptions{Reconnect: true, Seed: 5})
	_, id, err := client.Create([]byte(`{"id":"att-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	// A second create for the same id reports CodeExists...
	_, _, err = client.Create([]byte(`{"id":"att-1"}`))
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeExists {
		t.Fatalf("duplicate create = %v, want CodeExists", err)
	}
	// ...and Attach recovers a usable ref.
	ref, err := client.Attach(id)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if _, err := client.Play(ref, 1); err != nil {
		t.Fatalf("Play on attached ref: %v", err)
	}
}
