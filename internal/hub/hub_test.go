package hub

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gameauthority/internal/core"
	"gameauthority/internal/game"
	"gameauthority/internal/metrics"
	"gameauthority/internal/wire"
)

// fakeHandle is a minimal Handle: deterministic plays, observer fan-out,
// canned stats/snapshot. It lets the hub tests cover the full command
// surface without standing up a real authority.
type fakeHandle struct {
	id string

	mu      sync.Mutex
	rounds  int
	history []core.RoundResult
	seq     uint64
	obs     map[int]core.Observer
	nextOb  int

	playErr  error // when set, Play fails without advancing...
	failFrom int   // ...once the session reaches this round
}

func newFakeHandle(id string) *fakeHandle {
	return &fakeHandle{id: id, obs: map[int]core.Observer{}}
}

func (h *fakeHandle) ID() string { return h.id }

func (h *fakeHandle) Play(ctx context.Context) (core.RoundResult, error) {
	h.mu.Lock()
	if err := h.playErr; err != nil && h.rounds >= h.failFrom {
		h.mu.Unlock()
		return core.RoundResult{}, err
	}
	r := h.rounds
	h.rounds++
	h.seq++
	seq := h.seq
	var watchers []core.Observer
	for _, o := range h.obs {
		watchers = append(watchers, o)
	}
	res := core.RoundResult{
		Round:   r,
		Outcome: game.Profile{r % 2, 1},
		Costs:   []float64{1, 2},
	}
	h.history = append(h.history, res)
	h.mu.Unlock()
	for _, o := range watchers {
		o.OnEvent(core.Event{
			Kind: core.EventPlay, Round: r, Seq: seq,
			Outcome: res.Outcome, Costs: res.Costs,
		})
	}
	return res, nil
}

func (h *fakeHandle) ResultAt(round int) (core.RoundResult, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if round < 0 || round >= len(h.history) {
		return core.RoundResult{}, false
	}
	return h.history[round], true
}

func (h *fakeHandle) Subscribe(obs core.Observer) func() {
	h.mu.Lock()
	id := h.nextOb
	h.nextOb++
	h.obs[id] = obs
	h.mu.Unlock()
	return func() {
		h.mu.Lock()
		delete(h.obs, id)
		h.mu.Unlock()
	}
}

func (h *fakeHandle) Stats() core.SessionStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return core.SessionStats{
		Kind: core.KindPure, Players: 2, Rounds: h.rounds,
		CumulativeCost: []float64{float64(h.rounds), 2 * float64(h.rounds)},
		Excluded:       []bool{false, false},
	}
}

func (h *fakeHandle) Snapshot() (core.SessionSnapshot, bool, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return core.SessionSnapshot{Rounds: h.rounds, Digest: fmt.Sprintf("digest-%d", h.rounds)}, true, nil
}

type fakeBackend struct {
	mu       sync.Mutex
	sessions map[string]*fakeHandle
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{sessions: map[string]*fakeHandle{}}
}

func (b *fakeBackend) Create(spec []byte) (Handle, error) {
	var req struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(spec, &req); err != nil || req.ID == "" {
		return nil, Coded{Code: wire.CodeBadRequest, Err: fmt.Errorf("bad spec: %v", err)}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.sessions[req.ID]; ok {
		return nil, Coded{Code: wire.CodeExists, Err: errors.New("session exists")}
	}
	h := newFakeHandle(req.ID)
	b.sessions[req.ID] = h
	return h, nil
}

func (b *fakeBackend) Attach(_ context.Context, id string) (Handle, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if h, ok := b.sessions[id]; ok {
		return h, nil
	}
	return nil, Coded{Code: wire.CodeNotFound, Err: errors.New("no such session")}
}

func (b *fakeBackend) Remove(id string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.sessions[id]; !ok {
		return Coded{Code: wire.CodeNotFound, Err: errors.New("no such session")}
	}
	delete(b.sessions, id)
	return nil
}

// newHubClient stands up a hub over a fake backend and dials it.
func newHubClient(t *testing.T) (*fakeBackend, *Client) {
	t.Helper()
	backend := newFakeBackend()
	shards := NewShards(2)
	t.Cleanup(shards.Close)
	var counters metrics.Counters
	srv := httptest.NewServer(New(backend, Options{Shards: shards, Counters: &counters}))
	t.Cleanup(srv.Close)
	client, err := Dial(srv.URL)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	return backend, client
}

func TestHubCommandSurface(t *testing.T) {
	_, client := newHubClient(t)

	ref, id, err := client.Create([]byte(`{"id":"s1"}`))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if id != "s1" || ref == 0 {
		t.Fatalf("Create → ref %d id %q", ref, id)
	}

	out, err := client.Play(ref, 3)
	if err != nil {
		t.Fatalf("Play: %v", err)
	}
	if out.Completed != 3 || out.Last.Round != 2 || len(out.Last.Outcome) != 2 {
		t.Fatalf("Play → %+v", out)
	}

	st, err := client.Stats(ref)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Rounds != 3 || st.Players != 2 || len(st.Excluded) != 0 {
		t.Fatalf("Stats → %+v", st)
	}

	snap, err := client.Snapshot(ref)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if snap.Rounds != 3 || snap.Digest != "digest-3" || !snap.Persisted {
		t.Fatalf("Snapshot → %+v", snap)
	}

	// A second connection attaches to the same session by ID.
	ref2, err := client.Attach("s1")
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if _, err := client.Play(ref2, 1); err != nil {
		t.Fatalf("Play via attached ref: %v", err)
	}

	// Duplicate create surfaces the backend's code.
	if _, _, err := client.Create([]byte(`{"id":"s1"}`)); code(err) != wire.CodeExists {
		t.Fatalf("duplicate Create err = %v", err)
	}
	if _, _, err := client.Create([]byte(`not json`)); code(err) != wire.CodeBadRequest {
		t.Fatalf("bad spec err = %v", err)
	}
	if _, err := client.Attach("ghost"); code(err) != wire.CodeNotFound {
		t.Fatalf("Attach ghost err = %v", err)
	}

	if err := client.CloseSession(ref); err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	if _, err := client.Play(ref, 1); code(err) != wire.CodeNotFound {
		t.Fatalf("Play after close err = %v", err)
	}
	// The attached ref is connection-local state pointing at a removed
	// session: commands on it still resolve the ref but the backend is
	// authoritative — closing it again reports not-found.
	if err := client.CloseSession(ref2); code(err) != wire.CodeNotFound {
		t.Fatalf("CloseSession on removed session err = %v", err)
	}
}

// code extracts the wire code from a client-side RemoteError.
func code(err error) uint64 {
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Code
	}
	return wire.CodeOK
}

func TestHubSubscribe(t *testing.T) {
	_, client := newHubClient(t)
	ref, _, err := client.Create([]byte(`{"id":"sub"}`))
	if err != nil {
		t.Fatal(err)
	}

	events := make(chan wire.Event, 16)
	if err := client.Subscribe(ref, func(ev wire.Event, lag uint64) {
		// Event slices are valid only during the handler call; copy them
		// before handing the event to another goroutine.
		ev.Outcome = append([]int(nil), ev.Outcome...)
		ev.Costs = append([]float64(nil), ev.Costs...)
		events <- ev
	}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if err := client.Subscribe(ref, nil); err == nil {
		t.Fatal("double Subscribe succeeded")
	}

	if _, err := client.Play(ref, 2); err != nil {
		t.Fatal(err)
	}
	for want := 0; want < 2; want++ {
		select {
		case ev := <-events:
			if int(ev.Kind) != int(core.EventPlay) || ev.Round != want {
				t.Fatalf("event %d = %+v", want, ev)
			}
			if len(ev.Outcome) != 2 || ev.Outcome[0] != want%2 {
				t.Fatalf("event %d outcome = %v", want, ev.Outcome)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("event %d never arrived", want)
		}
	}

	if err := client.Unsubscribe(ref); err != nil {
		t.Fatalf("Unsubscribe: %v", err)
	}
	if _, err := client.Play(ref, 1); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		t.Fatalf("event after unsubscribe: %+v", ev)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestHubVersionMismatch: a client announcing an unknown protocol version
// is refused with a wire error, not silently garbled.
func TestHubVersionMismatch(t *testing.T) {
	backend := newFakeBackend()
	shards := NewShards(1)
	t.Cleanup(shards.Close)
	srv := httptest.NewServer(New(backend, Options{Shards: shards}))
	t.Cleanup(srv.Close)

	ws := rawDial(t, srv.URL)
	if err := ws.WriteMessage(opBinary, wire.AppendHello(nil, 99, 0)); err != nil {
		t.Fatal(err)
	}
	_, payload, err := ws.ReadMessage()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	d := wire.NewDecoder(payload)
	if typ := d.Byte(); typ != wire.MsgError {
		t.Fatalf("reply type %#x", typ)
	}
	m, err := wire.DecodeError(&d)
	if err != nil || m.Code != wire.CodeBadRequest {
		t.Fatalf("error reply = %+v (%v)", m, err)
	}
}

// rawDial opens a WSConn to a hub URL without the Client's Hello/Welcome
// exchange, for protocol-level tests.
func rawDial(t *testing.T, base string) *WSConn {
	t.Helper()
	host := base[len("http://"):]
	conn, err := net.DialTimeout("tcp", host, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	ws, err := clientHandshake(conn, host, "/ws", 5*time.Second)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	return ws
}
