package hub

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"gameauthority/internal/core"
	"gameauthority/internal/metrics"
	"gameauthority/internal/wire"
)

// batchFakeHandle upgrades fakeHandle with the BatchHandle surface so
// tests can tell the batched execution path from the looped fallback.
type batchFakeHandle struct {
	*fakeHandle
	playNCalls atomic.Int64
}

func (h *batchFakeHandle) PlayN(ctx context.Context, n int, sink func(core.RoundResult) error) (core.RoundResult, error) {
	h.playNCalls.Add(1)
	var last core.RoundResult
	for i := 0; i < n; i++ {
		res, err := h.fakeHandle.Play(ctx)
		if err != nil {
			return last, err
		}
		last = res
		if sink != nil {
			if err := sink(res); err != nil {
				return last, err
			}
		}
	}
	return last, nil
}

// batchBackend serves batchFakeHandles.
type batchBackend struct {
	fakeBackend
}

func (b *batchBackend) Create(spec []byte) (Handle, error) {
	var req struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(spec, &req); err != nil || req.ID == "" {
		return nil, Coded{Code: wire.CodeBadRequest, Err: fmt.Errorf("bad spec: %v", err)}
	}
	h := &batchFakeHandle{fakeHandle: newFakeHandle(req.ID)}
	b.mu.Lock()
	b.sessions[req.ID] = h.fakeHandle
	b.mu.Unlock()
	return h, nil
}

// TestHubPlayBatchFallback drives MsgPlayBatch against a backend whose
// handles do NOT implement BatchHandle: the hub must transparently fall
// back to looped Play with an identical reply shape.
func TestHubPlayBatchFallback(t *testing.T) {
	_, client := newHubClient(t)
	ref, _, err := client.Create([]byte(`{"id":"fb-1"}`))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	out, err := client.PlayBatch(ref, 3)
	if err != nil {
		t.Fatalf("PlayBatch: %v", err)
	}
	if out.Completed != 3 || out.Last.Round != 2 || len(out.Last.Outcome) != 2 {
		t.Fatalf("PlayBatch → %+v", out)
	}
	// The two opcodes interleave on one session without disturbing the
	// round sequence.
	if out, err = client.Play(ref, 1); err != nil || out.Last.Round != 3 {
		t.Fatalf("Play after batch → %+v, %v", out, err)
	}
	if out, err = client.PlayBatch(ref, 2); err != nil || out.Last.Round != 5 {
		t.Fatalf("batch after play → %+v, %v", out, err)
	}
}

// TestHubPlayBatchUsesBatchHandle proves the batched opcode actually
// reaches PlayN — one call for the whole request — when the handle
// offers it.
func TestHubPlayBatchUsesBatchHandle(t *testing.T) {
	backend := &batchBackend{fakeBackend{sessions: map[string]*fakeHandle{}}}
	shards := NewShards(2)
	t.Cleanup(shards.Close)
	var counters metrics.Counters
	srv := httptest.NewServer(New(backend, Options{Shards: shards, Counters: &counters}))
	t.Cleanup(srv.Close)
	client, err := Dial(srv.URL)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { client.Close() })

	ref, id, err := client.Create([]byte(`{"id":"bh-1"}`))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	out, err := client.PlayBatch(ref, 4)
	if err != nil {
		t.Fatalf("PlayBatch: %v", err)
	}
	if out.Completed != 4 || out.Last.Round != 3 {
		t.Fatalf("PlayBatch → %+v", out)
	}
	backend.mu.Lock()
	inner := backend.sessions[id]
	backend.mu.Unlock()
	if inner.rounds != 4 {
		t.Fatalf("session at round %d, want 4", inner.rounds)
	}
	// One MsgPlayBatch, one PlayN call: MsgPlay must not touch it.
	if out, err = client.Play(ref, 2); err != nil || out.Last.Round != 5 {
		t.Fatalf("Play after batch → %+v, %v", out, err)
	}
}

// TestClientPlayBatchDedup pins the watermark protocol on the batched
// opcode: a server ahead of the client replays the orphaned rounds from
// history and batch-plays only the remainder.
func TestClientPlayBatchDedup(t *testing.T) {
	backend, _, client := newHealingClient(t, DialOptions{Reconnect: true, Seed: 5})
	ref, id, err := client.Create([]byte(`{"id":"bdedup-1"}`))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := client.PlayBatch(ref, 2); err != nil {
		t.Fatalf("PlayBatch: %v", err)
	}

	// Advance the session behind the client's back — the state a lost
	// batch ack leaves.
	backend.mu.Lock()
	h := backend.sessions[id]
	backend.mu.Unlock()
	if _, err := h.Play(context.Background()); err != nil {
		t.Fatal(err)
	}

	out, err := client.PlayBatch(ref, 3)
	if err != nil {
		t.Fatalf("retried PlayBatch: %v", err)
	}
	if out.Completed != 3 || out.Deduped != 1 {
		t.Fatalf("outcome = %+v, want 3 completed with 1 deduped", out)
	}
	if out.Last.Round != 4 {
		t.Fatalf("last round %d, want 4", out.Last.Round)
	}
	// The next batch runs fresh from the reconciled watermark.
	out, err = client.PlayBatch(ref, 1)
	if err != nil || out.Last.Round != 5 || out.Deduped != 0 {
		t.Fatalf("follow-up batch = %+v, %v", out, err)
	}
}
