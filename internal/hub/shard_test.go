package hub

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestShardsDefaultSize(t *testing.T) {
	if n := NewShardsForTest(t, 0).N(); n != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewShards(0).N() = %d, want GOMAXPROCS = %d", n, runtime.GOMAXPROCS(0))
	}
	if n := NewShardsForTest(t, 3).N(); n != 3 {
		t.Fatalf("NewShards(3).N() = %d", n)
	}
}

// NewShardsForTest builds a pool torn down with the test.
func NewShardsForTest(t *testing.T, n int) *Shards {
	t.Helper()
	s := NewShards(n)
	t.Cleanup(s.Close)
	return s
}

func TestShardsIndexStableAndInRange(t *testing.T) {
	s := NewShardsForTest(t, 7)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("session-%d", i)
		idx := s.Index(key)
		if idx < 0 || idx >= s.N() {
			t.Fatalf("Index(%q) = %d out of range", key, idx)
		}
		if again := s.Index(key); again != idx {
			t.Fatalf("Index(%q) unstable: %d then %d", key, idx, again)
		}
	}
}

// TestShardsSerializePerKey: jobs for one key run in submission order —
// the property the hub relies on for session state ownership.
func TestShardsSerializePerKey(t *testing.T) {
	s := NewShardsForTest(t, 4)
	const jobs = 500
	var order []int // appended without locking: same-shard jobs serialize
	done := make(chan struct{})
	for i := 0; i < jobs; i++ {
		i := i
		if !s.Submit("the-one-session", func() {
			order = append(order, i)
			if i == jobs-1 {
				close(done)
			}
		}) {
			t.Fatalf("Submit %d refused", i)
		}
	}
	<-done
	if len(order) != jobs {
		t.Fatalf("ran %d jobs, want %d", len(order), jobs)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d: same-key jobs reordered", i, got)
		}
	}
}

// TestShardsCloseDrains: every Submit that returned true must have run by
// the time Close returns, even when Close races active submitters.
func TestShardsCloseDrains(t *testing.T) {
	s := NewShards(4)
	var accepted, executed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if s.Submit(fmt.Sprintf("key-%d-%d", g, i%13), func() {
					executed.Add(1)
				}) {
					accepted.Add(1)
				} else {
					return // pool closed
				}
			}
		}(g)
	}
	// Let the submitters get going, then close under load.
	for accepted.Load() < 1000 {
		runtime.Gosched()
	}
	s.Close()
	close(stop)
	wg.Wait()
	if a, e := accepted.Load(), executed.Load(); a != e {
		t.Fatalf("accepted %d jobs but executed %d: Close dropped work", a, e)
	}
	if s.Submit("late", func() {}) {
		t.Fatal("Submit accepted after Close")
	}
}

func TestShardsCloseIdempotent(t *testing.T) {
	s := NewShards(2)
	s.Close()
	s.Close() // must not panic or hang
}
