package hub

import (
	"bufio"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// WebSocket opcodes (RFC 6455 §5.2).
const (
	opContinuation = 0x0
	opText         = 0x1
	opBinary       = 0x2
	opClose        = 0x8
	opPing         = 0x9
	opPong         = 0xA
)

// wsGUID is the fixed handshake GUID from RFC 6455 §1.3.
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// DefaultMaxMessage caps one assembled WebSocket message. Frames are
// small (a batch of wire messages); anything near this limit is abuse.
const DefaultMaxMessage = 4 << 20

// ErrWSClosed reports a clean close handshake from the peer.
var ErrWSClosed = errors.New("hub: websocket closed by peer")

// WSConn is a minimal RFC 6455 connection carrying binary messages. Reads
// must come from a single goroutine; writes are internally locked so the
// read side can answer pings while a writer goroutine streams frames.
type WSConn struct {
	conn       net.Conn
	br         *bufio.Reader
	bw         *bufio.Writer
	wmu        chan struct{} // 1-slot write lock, also guards bw and whdr
	client     bool          // mask outgoing frames (client role)
	maxMessage int
	rbuf       []byte   // reassembled message, reused across reads
	rhdr       [8]byte  // reader scratch
	whdr       [14]byte // writer scratch (under wmu)
	wscratch   []byte   // masking scratch (client role, under wmu)
	maskState  uint64   // splitmix64 state for mask keys (under wmu)
	activity   atomic.Uint64
}

func newWSConn(conn net.Conn, br *bufio.Reader, client bool, maxMessage int) *WSConn {
	if maxMessage <= 0 {
		maxMessage = DefaultMaxMessage
	}
	c := &WSConn{
		conn:       conn,
		br:         br,
		bw:         bufio.NewWriterSize(conn, 1<<16),
		wmu:        make(chan struct{}, 1),
		client:     client,
		maxMessage: maxMessage,
	}
	var seed [8]byte
	if _, err := io.ReadFull(cryptoRand, seed[:]); err == nil {
		c.maskState = binary.LittleEndian.Uint64(seed[:])
	}
	c.maskState |= 1
	return c
}

func (c *WSConn) lock()   { c.wmu <- struct{}{} }
func (c *WSConn) unlock() { <-c.wmu }

// Upgrade performs the server side of the opening handshake and hijacks
// the connection. On failure it writes the appropriate HTTP error status
// and returns a non-nil error.
func Upgrade(w http.ResponseWriter, r *http.Request, maxMessage int) (*WSConn, error) {
	if r.Method != http.MethodGet {
		http.Error(w, "websocket: GET required", http.StatusMethodNotAllowed)
		return nil, errors.New("hub: upgrade: method not GET")
	}
	if !headerHasToken(r.Header, "Connection", "upgrade") ||
		!headerHasToken(r.Header, "Upgrade", "websocket") {
		http.Error(w, "websocket: upgrade required", http.StatusBadRequest)
		return nil, errors.New("hub: upgrade: not a websocket handshake")
	}
	if r.Header.Get("Sec-WebSocket-Version") != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		http.Error(w, "websocket: unsupported version", http.StatusUpgradeRequired)
		return nil, errors.New("hub: upgrade: unsupported version")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "websocket: missing key", http.StatusBadRequest)
		return nil, errors.New("hub: upgrade: missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "websocket: server does not support hijacking", http.StatusInternalServerError)
		return nil, errors.New("hub: upgrade: response not hijackable")
	}
	conn, brw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("hub: upgrade hijack: %w", err)
	}
	conn.SetDeadline(time.Time{})
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + acceptKey(key) + "\r\n\r\n"
	if _, err := conn.Write([]byte(resp)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("hub: upgrade response: %w", err)
	}
	return newWSConn(conn, brw.Reader, false, maxMessage), nil
}

// acceptKey computes the Sec-WebSocket-Accept value for a client key.
func acceptKey(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// headerHasToken reports whether a comma-separated header contains the
// token (case-insensitive), as required for Connection/Upgrade.
func headerHasToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// ReadMessage reads the next data message, transparently answering pings
// and reassembling fragmented messages. The returned payload aliases an
// internal buffer valid until the next ReadMessage.
func (c *WSConn) ReadMessage() (op byte, payload []byte, err error) {
	msg := c.rbuf[:0]
	msgOp := byte(0)
	for {
		hdr := c.rhdr[:2]
		if _, err := io.ReadFull(c.br, hdr); err != nil {
			return 0, nil, err
		}
		// Every frame the peer sends — including pongs, which are
		// otherwise swallowed below — counts as read activity for the
		// keepalive probe.
		c.activity.Add(1)
		fin := hdr[0]&0x80 != 0
		if hdr[0]&0x70 != 0 {
			return 0, nil, errors.New("hub: websocket: nonzero RSV bits")
		}
		frameOp := hdr[0] & 0x0F
		masked := hdr[1]&0x80 != 0
		plen := uint64(hdr[1] & 0x7F)
		switch plen {
		case 126:
			ext := c.rhdr[:2]
			if _, err := io.ReadFull(c.br, ext); err != nil {
				return 0, nil, err
			}
			plen = uint64(binary.BigEndian.Uint16(ext))
		case 127:
			ext := c.rhdr[:8]
			if _, err := io.ReadFull(c.br, ext); err != nil {
				return 0, nil, err
			}
			plen = binary.BigEndian.Uint64(ext)
			if plen>>63 != 0 {
				return 0, nil, errors.New("hub: websocket: invalid frame length")
			}
		}
		var maskKey [4]byte
		if masked {
			if _, err := io.ReadFull(c.br, maskKey[:]); err != nil {
				return 0, nil, err
			}
		}

		if frameOp >= opClose { // control frame
			if !fin || plen > 125 {
				return 0, nil, errors.New("hub: websocket: malformed control frame")
			}
			var ctl [125]byte
			body := ctl[:plen]
			if _, err := io.ReadFull(c.br, body); err != nil {
				return 0, nil, err
			}
			if masked {
				maskBytes(body, maskKey, 0)
			}
			switch frameOp {
			case opPing:
				if err := c.writeFrame(opPong, body, true); err != nil {
					return 0, nil, err
				}
			case opPong:
				// ignore
			case opClose:
				c.writeFrame(opClose, body, true) // best-effort echo
				return 0, nil, ErrWSClosed
			default:
				return 0, nil, fmt.Errorf("hub: websocket: unknown control opcode %#x", frameOp)
			}
			continue
		}

		switch frameOp {
		case opContinuation:
			if msgOp == 0 {
				return 0, nil, errors.New("hub: websocket: continuation without start")
			}
		case opText, opBinary:
			if msgOp != 0 {
				return 0, nil, errors.New("hub: websocket: interleaved data frames")
			}
			msgOp = frameOp
		default:
			return 0, nil, fmt.Errorf("hub: websocket: unknown data opcode %#x", frameOp)
		}
		if uint64(len(msg))+plen > uint64(c.maxMessage) {
			return 0, nil, fmt.Errorf("hub: websocket: message exceeds %d bytes", c.maxMessage)
		}
		start := len(msg)
		msg = append(msg, make([]byte, plen)...)
		if _, err := io.ReadFull(c.br, msg[start:]); err != nil {
			return 0, nil, err
		}
		if masked {
			maskBytes(msg[start:], maskKey, 0)
		}
		if fin {
			c.rbuf = msg
			return msgOp, msg, nil
		}
	}
}

// maskBytes XORs b with the 4-byte key, starting at key offset pos.
func maskBytes(b []byte, key [4]byte, pos int) {
	for i := range b {
		b[i] ^= key[(pos+i)&3]
	}
}

// writeFrame writes one complete frame. flush controls whether the
// buffered writer is flushed afterwards; callers coalescing several
// messages flush once at the end via Flush.
func (c *WSConn) writeFrame(op byte, payload []byte, flush bool) error {
	c.lock()
	defer c.unlock()
	hdr := c.whdr[:0]
	hdr = append(hdr, 0x80|op)
	maskBit := byte(0)
	if c.client {
		maskBit = 0x80
	}
	switch n := len(payload); {
	case n < 126:
		hdr = append(hdr, maskBit|byte(n))
	case n <= 0xFFFF:
		hdr = append(hdr, maskBit|126)
		hdr = binary.BigEndian.AppendUint16(hdr, uint16(n))
	default:
		hdr = append(hdr, maskBit|127)
		hdr = binary.BigEndian.AppendUint64(hdr, uint64(n))
	}
	var maskKey [4]byte
	if c.client {
		// splitmix64: cheap, seeded from crypto/rand at connect.
		c.maskState += 0x9E3779B97F4A7C15
		z := c.maskState
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		binary.LittleEndian.PutUint32(maskKey[:], uint32(z^(z>>31)))
		hdr = append(hdr, maskKey[:]...)
	}
	if _, err := c.bw.Write(hdr); err != nil {
		return err
	}
	if c.client {
		// Mask through a scratch buffer so the caller's payload is not
		// clobbered.
		if cap(c.wscratch) < 4096 {
			c.wscratch = make([]byte, 4096)
		}
		scratch := c.wscratch[:4096]
		for off := 0; off < len(payload); off += len(scratch) {
			chunk := payload[off:min(len(payload), off+len(scratch))]
			n := copy(scratch, chunk)
			maskBytes(scratch[:n], maskKey, off)
			if _, err := c.bw.Write(scratch[:n]); err != nil {
				return err
			}
		}
	} else if _, err := c.bw.Write(payload); err != nil {
		return err
	}
	if flush {
		return c.bw.Flush()
	}
	return nil
}

// WriteMessage writes one binary/text message and flushes.
func (c *WSConn) WriteMessage(op byte, payload []byte) error {
	return c.writeFrame(op, payload, true)
}

// WriteMessageNoFlush queues one message in the buffered writer; pair
// with Flush to coalesce several messages into one syscall.
func (c *WSConn) WriteMessageNoFlush(op byte, payload []byte) error {
	return c.writeFrame(op, payload, false)
}

// Flush drains the buffered writer to the connection.
func (c *WSConn) Flush() error {
	c.lock()
	defer c.unlock()
	return c.bw.Flush()
}

// Activity returns a counter of frames read from the peer (including
// control frames such as pongs). A keepalive probe compares successive
// readings: a counter that stops advancing despite pings means the
// connection is half-open.
func (c *WSConn) Activity() uint64 { return c.activity.Load() }

// WritePing sends a ping control frame and flushes. A live peer answers
// with a pong, which shows up as read activity.
func (c *WSConn) WritePing(payload []byte) error {
	return c.writeFrame(opPing, payload, true)
}

// SetReadDeadline bounds the next ReadMessage.
func (c *WSConn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// SetWriteDeadline bounds subsequent writes; a stalled peer surfaces as a
// timeout error on the writer, which closes the connection.
func (c *WSConn) SetWriteDeadline(t time.Time) error { return c.conn.SetWriteDeadline(t) }

// Close sends a best-effort close frame and tears down the connection. It
// is safe to call concurrently with reads and writes.
func (c *WSConn) Close() error {
	c.conn.SetWriteDeadline(time.Now().Add(time.Second))
	c.writeFrame(opClose, nil, true)
	return c.conn.Close()
}
