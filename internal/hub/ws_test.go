package hub

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// pipePair wires a server-role and client-role WSConn over net.Pipe.
func pipePair(t *testing.T, maxMessage int) (server, client *WSConn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return newWSConn(a, newConnReader(a), false, maxMessage),
		newWSConn(b, newConnReader(b), true, maxMessage)
}

// TestAcceptKey pins the RFC 6455 §1.3 sample handshake value.
func TestAcceptKey(t *testing.T) {
	got := acceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	if got != "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" {
		t.Fatalf("acceptKey = %q", got)
	}
}

// TestWSRoundTripSizes crosses every frame-length encoding (7-bit,
// 16-bit, 64-bit) in both directions. Client-role frames are masked;
// a round trip proves mask/unmask agree.
func TestWSRoundTripSizes(t *testing.T) {
	server, client := pipePair(t, 0)
	sizes := []int{0, 1, 125, 126, 4096, 65535, 65536, 200_000}
	for _, n := range sizes {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		for _, dir := range []struct {
			name string
			from *WSConn
			to   *WSConn
		}{{"client->server", client, server}, {"server->client", server, client}} {
			errc := make(chan error, 1)
			go func() { errc <- dir.from.WriteMessage(opBinary, payload) }()
			op, got, err := dir.to.ReadMessage()
			if err != nil {
				t.Fatalf("%s size %d: read: %v", dir.name, n, err)
			}
			if op != opBinary || !bytes.Equal(got, payload) {
				t.Fatalf("%s size %d: op %#x, payload mismatch (%d bytes)", dir.name, n, op, len(got))
			}
			if err := <-errc; err != nil {
				t.Fatalf("%s size %d: write: %v", dir.name, n, err)
			}
		}
	}
}

// TestWSFragmentation feeds a hand-built fragmented message — with a ping
// interleaved between fragments — and expects one reassembled message and
// an automatic pong.
func TestWSFragmentation(t *testing.T) {
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	server := newWSConn(a, newConnReader(a), false, 0)

	// Client-to-server frames must set the mask bit; an all-zero key makes
	// masking the identity, keeping the raw bytes legible.
	mask := []byte{0, 0, 0, 0}
	var raw []byte
	raw = append(raw, 0x02, 0x80|3) // binary, no FIN, masked, len 3
	raw = append(raw, mask...)
	raw = append(raw, 'f', 'o', 'o')
	raw = append(raw, 0x89, 0x80|2) // ping, FIN, masked, len 2
	raw = append(raw, mask...)
	raw = append(raw, 'h', 'i')
	raw = append(raw, 0x80, 0x80|3) // continuation, FIN, masked, len 3
	raw = append(raw, mask...)
	raw = append(raw, 'b', 'a', 'r')

	type result struct {
		pong []byte
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		if _, err := b.Write(raw); err != nil {
			resc <- result{nil, err}
			return
		}
		// The server answers the ping before reading the continuation.
		pong := make([]byte, 4) // unmasked: 2-byte header + "hi"
		_, err := io.ReadFull(b, pong)
		resc <- result{pong, err}
	}()

	op, payload, err := server.ReadMessage()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if op != opBinary || string(payload) != "foobar" {
		t.Fatalf("op %#x payload %q", op, payload)
	}
	r := <-resc
	if r.err != nil {
		t.Fatalf("raw peer: %v", r.err)
	}
	if r.pong[0] != 0x80|opPong || r.pong[1] != 2 || string(r.pong[2:]) != "hi" {
		t.Fatalf("pong frame = % x", r.pong)
	}
}

// TestWSCloseHandshake: a peer Close surfaces as ErrWSClosed on the
// reader, not as a protocol error.
func TestWSCloseHandshake(t *testing.T) {
	server, client := pipePair(t, 0)
	go client.Close()
	_, _, err := server.ReadMessage()
	if !errors.Is(err, ErrWSClosed) {
		t.Fatalf("err = %v, want ErrWSClosed", err)
	}
}

// TestWSMaxMessage: a frame advertising more than maxMessage fails before
// the payload is buffered.
func TestWSMaxMessage(t *testing.T) {
	server, client := pipePair(t, 16)
	go client.WriteMessage(opBinary, make([]byte, 64)) // blocks, then errors on close
	_, _, err := server.ReadMessage()
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("err = %v, want size cap error", err)
	}
}

// TestWSProtocolErrors: RSV bits and unknown opcodes kill the connection.
func TestWSProtocolErrors(t *testing.T) {
	cases := map[string][]byte{
		"rsv bits":           {0xC2, 0x80, 0, 0, 0, 0},          // RSV1 set
		"unknown data op":    {0x83, 0x80, 0, 0, 0, 0},          // opcode 0x3
		"bare continuation":  {0x80, 0x80 | 1, 0, 0, 0, 0, 'x'}, // continuation without start
		"fragmented control": {0x08, 0x80, 0, 0, 0, 0},          // close without FIN
	}
	for name, raw := range cases {
		a, b := net.Pipe()
		server := newWSConn(a, newConnReader(a), false, 0)
		go b.Write(raw)
		_, _, err := server.ReadMessage()
		if err == nil || errors.Is(err, ErrWSClosed) {
			t.Errorf("%s: err = %v, want protocol error", name, err)
		}
		a.Close()
		b.Close()
	}
}

// TestUpgradeRejects covers the handshake's error paths; the success path
// is exercised by TestClientHandshake and every hub integration test.
func TestUpgradeRejects(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := Upgrade(w, r, 0); err == nil {
			t.Error("Upgrade accepted a bad handshake")
		}
	}))
	defer srv.Close()

	do := func(build func(*http.Request)) int {
		req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
		build(req)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := do(func(r *http.Request) { r.Method = http.MethodPost }); code != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d", code)
	}
	if code := do(func(r *http.Request) {}); code != http.StatusBadRequest {
		t.Errorf("plain GET: status %d", code)
	}
	if code := do(func(r *http.Request) {
		r.Header.Set("Connection", "Upgrade")
		r.Header.Set("Upgrade", "websocket")
		r.Header.Set("Sec-WebSocket-Version", "12")
	}); code != http.StatusUpgradeRequired {
		t.Errorf("bad version: status %d", code)
	}
	if code := do(func(r *http.Request) {
		r.Header.Set("Connection", "Upgrade")
		r.Header.Set("Upgrade", "websocket")
		r.Header.Set("Sec-WebSocket-Version", "13")
	}); code != http.StatusBadRequest {
		t.Errorf("missing key: status %d", code)
	}
}

// TestClientHandshake runs the real opening handshake — client side
// against Upgrade — then echoes one message through both roles.
func TestClientHandshake(t *testing.T) {
	ready := make(chan *WSConn, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ws, err := Upgrade(w, r, 0)
		if err != nil {
			t.Errorf("Upgrade: %v", err)
			return
		}
		ready <- ws
		op, payload, err := ws.ReadMessage()
		if err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		ws.WriteMessage(op, payload)
	}))
	defer srv.Close()

	host := strings.TrimPrefix(srv.URL, "http://")
	conn, err := net.DialTimeout("tcp", host, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	client, err := clientHandshake(conn, host, "/ws", 5*time.Second)
	if err != nil {
		t.Fatalf("clientHandshake: %v", err)
	}
	if err := client.WriteMessage(opBinary, []byte("echo me")); err != nil {
		t.Fatal(err)
	}
	op, payload, err := client.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != opBinary || string(payload) != "echo me" {
		t.Fatalf("op %#x payload %q", op, payload)
	}
	(<-ready).Close()
}
