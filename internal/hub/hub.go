package hub

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"gameauthority/internal/core"
	"gameauthority/internal/metrics"
	"gameauthority/internal/obs"
	"gameauthority/internal/wire"
)

// wsRoundTrip measures a play command's full server-side round trip:
// from command decode on the reader goroutine to the results frame being
// queued on the connection outbox.
var wsRoundTrip = obs.NewHistogram("gameauthority_ws_roundtrip_seconds",
	"WebSocket play round-trip latency, decode to results frame queued.")

// liveConns holds every open connection across all hubs; the outbox
// depth gauge samples it at scrape time.
var liveConns sync.Map // *wsConn -> struct{}

func init() {
	obs.RegisterGaugeFunc("gameauthority_hub_outbox_depth",
		"Frames queued on WebSocket outboxes, summed over open connections.",
		func() float64 {
			var n int
			liveConns.Range(func(k, _ any) bool {
				n += len(k.(*wsConn).outbox)
				return true
			})
			return float64(n)
		})
}

// Handle is one hosted session as the hub needs it. The root package
// adapts *gameauthority.HostedSession; the indirection keeps internal/hub
// importable without a cycle. Play must be the direct (non-routed) form:
// the hub already runs it on the session's shard loop.
type Handle interface {
	ID() string
	Play(ctx context.Context) (core.RoundResult, error)
	// ResultAt returns the completed result of an absolute round index,
	// if it is still in the session's retained history — the replay
	// source for deduplicated play retries. The result may alias
	// session-owned buffers; encode or copy it before the next play.
	ResultAt(round int) (core.RoundResult, bool)
	Subscribe(obs core.Observer) (cancel func())
	Stats() core.SessionStats
	// Snapshot captures (and, when a durable store is configured,
	// persists) the session's canonical snapshot.
	Snapshot() (snap core.SessionSnapshot, persisted bool, err error)
}

// BatchHandle is the optional batched-play surface of a Handle. A handle
// that implements it runs N rounds under one session lock and journals
// them as a single batch WAL record; the hub falls back to looped Play
// when the assertion fails. Like Handle.Play, PlayN must be the direct
// (non-routed) form — the hub already runs it on the session's shard
// loop.
type BatchHandle interface {
	PlayN(ctx context.Context, n int, sink func(core.RoundResult) error) (core.RoundResult, error)
}

// Backend is the authority surface the hub dispatches commands into.
type Backend interface {
	// Create hosts a session from a JSON CreateSessionRequest document.
	Create(spec []byte) (Handle, error)
	// Attach resolves an existing (possibly store-resident) session.
	Attach(ctx context.Context, id string) (Handle, error)
	// Remove closes and unregisters a session.
	Remove(id string) error
}

// Coded attaches a wire error code to an error so the backend can steer
// the status a client sees.
type Coded struct {
	Code uint64
	Err  error
}

func (c Coded) Error() string { return c.Err.Error() }

// Unwrap exposes the inner error to errors.Is/As.
func (c Coded) Unwrap() error { return c.Err }

// ErrCode extracts the wire code from err, defaulting to CodeInternal.
func ErrCode(err error) uint64 {
	var c Coded
	if errors.As(err, &c) {
		return c.Code
	}
	return wire.CodeInternal
}

// Options tune a Hub.
type Options struct {
	// Shards is the pool running plays; required.
	Shards *Shards
	// Counters receives transport metrics; optional.
	Counters *metrics.Counters
	// Outbox is the per-connection queue depth in frames (default 256).
	Outbox int
	// WriteTimeout bounds one flush to the peer; a connection that cannot
	// absorb its outbox within it is closed (default 10s).
	WriteTimeout time.Duration
	// MaxMessage caps one incoming WebSocket message (default 4 MiB).
	MaxMessage int
	// MaxRounds caps rounds per play command, mirroring the HTTP API.
	MaxRounds uint64
}

// Hub serves the /ws endpoint: each connection multiplexes many sessions,
// with a single reader (the request goroutine) dispatching commands onto
// the shard loops and a single writer goroutine draining a bounded
// outbox.
type Hub struct {
	backend Backend
	opt     Options
	bufs    sync.Pool
}

// New builds a Hub over the backend.
func New(b Backend, opt Options) *Hub {
	if opt.Shards == nil {
		panic("hub: Options.Shards is required")
	}
	if opt.Outbox <= 0 {
		opt.Outbox = 256
	}
	if opt.WriteTimeout <= 0 {
		opt.WriteTimeout = 10 * time.Second
	}
	if opt.MaxRounds == 0 {
		opt.MaxRounds = 100000
	}
	return &Hub{backend: b, opt: opt}
}

func (h *Hub) getBuf() []byte {
	if b, ok := h.bufs.Get().(*[]byte); ok {
		return (*b)[:0]
	}
	return make([]byte, 0, 512)
}

func (h *Hub) putBuf(b []byte) {
	if cap(b) > 1<<16 { // don't pool jumbo buffers
		return
	}
	h.bufs.Put(&b)
}

// ServeHTTP upgrades the request and runs the connection until the peer
// goes away or a protocol error occurs.
func (h *Hub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ws, err := Upgrade(w, r, h.opt.MaxMessage)
	if err != nil {
		return
	}
	if c := h.opt.Counters; c != nil {
		c.WSConnections.Add(1)
		defer c.WSConnections.Add(-1)
	}
	ctx, cancel := context.WithCancel(r.Context())
	conn := &wsConn{
		hub:    h,
		ws:     ws,
		ctx:    ctx,
		cancel: cancel,
		outbox: make(chan []byte, h.opt.Outbox),
		done:   make(chan struct{}),
		refs:   make(map[uint64]*refEntry),
	}
	liveConns.Store(conn, struct{}{})
	defer conn.shutdown()

	// Handshake: the client speaks first.
	ws.SetReadDeadline(time.Now().Add(10 * time.Second))
	op, payload, err := ws.ReadMessage()
	if err != nil || op != opBinary {
		return
	}
	dec := wire.NewDecoder(payload)
	if dec.Byte() != wire.MsgHello {
		return
	}
	hello, err := wire.DecodeHello(&dec)
	if err != nil || hello.Version != wire.Version {
		ws.WriteMessage(opBinary, wire.AppendError(nil, 0, wire.CodeBadRequest,
			fmt.Sprintf("unsupported protocol version (want %d)", wire.Version)))
		return
	}
	if c := h.opt.Counters; c != nil && hello.Flags&wire.FlagReconnect != 0 {
		c.Reconnects.Add(1)
	}
	ws.SetReadDeadline(time.Time{})
	if err := ws.WriteMessage(opBinary,
		wire.AppendWelcome(h.getBuf(), wire.Version, uint64(h.opt.Shards.N()))); err != nil {
		return
	}

	go conn.writeLoop()
	conn.readLoop()
}

// refEntry is one connection-local session binding.
type refEntry struct {
	ref    uint64
	handle Handle

	evMu   sync.Mutex // guards enc and unsub
	enc    wire.EventEncoder
	unsub  func()
	lagged uint64 // dropped events awaiting a MsgLag notice (under evMu)
}

// wsConn is the server side of one connection.
type wsConn struct {
	hub    *Hub
	ws     *WSConn
	ctx    context.Context
	cancel context.CancelFunc

	outbox chan []byte
	done   chan struct{}
	once   sync.Once

	mu      sync.Mutex // guards refs and nextRef
	refs    map[uint64]*refEntry
	nextRef uint64
}

// closeConn makes the connection doomed: pending sends unblock, the
// writer exits, in-flight shard jobs see a cancelled context.
func (c *wsConn) closeConn() {
	c.once.Do(func() {
		c.cancel()
		close(c.done)
		c.ws.Close()
	})
}

// shutdown runs when the reader exits: tear everything down and detach
// observers so closed connections stop consuming session events.
func (c *wsConn) shutdown() {
	liveConns.Delete(c)
	c.closeConn()
	c.mu.Lock()
	refs := make([]*refEntry, 0, len(c.refs))
	for _, e := range c.refs {
		refs = append(refs, e)
	}
	clear(c.refs)
	c.mu.Unlock()
	for _, e := range refs {
		e.detach()
	}
}

func (e *refEntry) detach() {
	e.evMu.Lock()
	unsub := e.unsub
	e.unsub = nil
	e.evMu.Unlock()
	if unsub != nil {
		unsub()
	}
}

// send queues a command reply. It blocks while the outbox is full (the
// writer goroutine drains it; a peer that cannot keep up trips the write
// deadline, which closes the connection and unblocks us) and reports
// whether the frame was accepted.
func (c *wsConn) send(b []byte) bool {
	select {
	case c.outbox <- b:
		return true
	case <-c.done:
		c.hub.putBuf(b)
		return false
	}
}

// trySend queues an event frame without blocking: events are droppable,
// and the subscriber is told how many it missed via MsgLag.
func (c *wsConn) trySend(b []byte) bool {
	select {
	case c.outbox <- b:
		return true
	default:
		c.hub.putBuf(b)
		return false
	}
}

// writeLoop drains the outbox, coalescing queued frames into one flush.
func (c *wsConn) writeLoop() {
	for {
		select {
		case b := <-c.outbox:
			if !c.writeBatch(b) {
				return
			}
		case <-c.done:
			// Best-effort drain of already-queued replies.
			for {
				select {
				case b := <-c.outbox:
					if !c.writeBatch(b) {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// writeBatch writes b plus everything else currently queued, then
// flushes under one write deadline.
func (c *wsConn) writeBatch(first []byte) bool {
	c.ws.SetWriteDeadline(time.Now().Add(c.hub.opt.WriteTimeout))
	err := c.ws.WriteMessageNoFlush(opBinary, first)
	c.hub.putBuf(first)
	for err == nil {
		select {
		case b := <-c.outbox:
			err = c.ws.WriteMessageNoFlush(opBinary, b)
			c.hub.putBuf(b)
			continue
		default:
		}
		break
	}
	if err == nil {
		err = c.ws.Flush()
	}
	if err != nil {
		if ctrs := c.hub.opt.Counters; ctrs != nil && isTimeout(err) {
			ctrs.StreamTimeouts.Add(1)
		}
		c.closeConn()
		return false
	}
	return true
}

func isTimeout(err error) bool {
	var ne interface{ Timeout() bool }
	return errors.As(err, &ne) && ne.Timeout()
}

// readLoop decodes command batches and dispatches them. Any protocol
// error is fatal to the connection.
func (c *wsConn) readLoop() {
	for {
		op, payload, err := c.ws.ReadMessage()
		if err != nil {
			return
		}
		if op != opBinary {
			continue
		}
		dec := wire.NewDecoder(payload)
		for dec.Len() > 0 {
			if !c.dispatch(&dec) {
				return
			}
		}
	}
}

func (c *wsConn) lookup(ref uint64) *refEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.refs[ref]
}

func (c *wsConn) sendError(reqID, code uint64, msg string) bool {
	return c.send(wire.AppendError(c.hub.getBuf(), reqID, code, msg))
}

// dispatch decodes and executes one command. It returns false when the
// connection should die (malformed frame or doomed connection).
func (c *wsConn) dispatch(dec *wire.Decoder) bool {
	switch typ := dec.Byte(); typ {
	case wire.MsgHello:
		if _, err := wire.DecodeHello(dec); err != nil {
			return false
		}
		return true // redundant hello: ignore
	case wire.MsgCreate:
		m, err := wire.DecodeCreate(dec)
		if err != nil {
			return false
		}
		handle, cerr := c.hub.backend.Create(m.Spec)
		return c.finishBind(m.ReqID, handle, cerr)
	case wire.MsgAttach:
		m, err := wire.DecodeAttach(dec)
		if err != nil {
			return false
		}
		handle, aerr := c.hub.backend.Attach(c.ctx, m.ID)
		return c.finishBind(m.ReqID, handle, aerr)
	case wire.MsgPlay:
		m, err := wire.DecodePlay(dec)
		if err != nil {
			return false
		}
		return c.handlePlay(m)
	case wire.MsgPlayBatch:
		m, err := wire.DecodePlayBatch(dec)
		if err != nil {
			return false
		}
		return c.handlePlayBatch(m)
	case wire.MsgSubscribe:
		m, err := wire.DecodeSubscribe(dec)
		if err != nil {
			return false
		}
		return c.handleSubscribe(m)
	case wire.MsgUnsubscribe:
		m, err := wire.DecodeRefReq(dec)
		if err != nil {
			return false
		}
		if e := c.lookup(m.Ref); e != nil {
			e.detach()
		}
		return c.send(wire.AppendOK(c.hub.getBuf(), m.ReqID))
	case wire.MsgCloseSession:
		m, err := wire.DecodeRefReq(dec)
		if err != nil {
			return false
		}
		return c.handleCloseSession(m)
	case wire.MsgStats:
		m, err := wire.DecodeRefReq(dec)
		if err != nil {
			return false
		}
		e := c.lookup(m.Ref)
		if e == nil {
			return c.sendError(m.ReqID, wire.CodeNotFound, "unknown ref")
		}
		st := e.handle.Stats()
		return c.send(wire.AppendStatsReply(c.hub.getBuf(), m.ReqID, &st))
	case wire.MsgSnapshot:
		m, err := wire.DecodeRefReq(dec)
		if err != nil {
			return false
		}
		return c.handleSnapshot(m)
	default:
		return false // unknown or server-to-client type: protocol error
	}
}

// finishBind registers a successfully created/attached handle under a
// fresh ref and replies.
func (c *wsConn) finishBind(reqID uint64, handle Handle, err error) bool {
	if err != nil {
		return c.sendError(reqID, ErrCode(err), err.Error())
	}
	c.mu.Lock()
	c.nextRef++
	ref := c.nextRef
	c.refs[ref] = &refEntry{ref: ref, handle: handle}
	c.mu.Unlock()
	// The completed-round count seeds the client's idempotency watermark
	// (bind is the cold path, so the extra Stats call costs nothing on
	// the play path).
	rounds := uint64(handle.Stats().Rounds)
	return c.send(wire.AppendCreated(c.hub.getBuf(), reqID, ref, handle.ID(), rounds))
}

// handlePlay enqueues the batch onto the session's shard loop; results
// stream back as they complete in a single MsgResults frame.
func (c *wsConn) handlePlay(m wire.Play) bool {
	t0 := time.Now()
	e := c.lookup(m.Ref)
	if e == nil {
		return c.sendError(m.ReqID, wire.CodeNotFound, "unknown ref")
	}
	rounds := m.Rounds
	if rounds == 0 {
		rounds = 1
	}
	if rounds > c.hub.opt.MaxRounds {
		return c.sendError(m.ReqID, wire.CodeBadRequest, "rounds exceeds limit")
	}
	ok := c.hub.opt.Shards.Submit(e.handle.ID(), func() {
		buf := wire.AppendResultsHeader(c.hub.getBuf(), m.ReqID, e.ref)
		code, detail := wire.CodeOK, ""
		var deduped uint64
		remaining := rounds
		if m.Expect > 0 {
			// Idempotent retry: the client believes expect rounds have
			// completed. When the session is ahead (the original command
			// was applied before the connection died), replay the
			// already-completed overlap from the session's history
			// instead of double-playing.
			expect := m.Expect - 1
			if cur := uint64(e.handle.Stats().Rounds); cur > expect {
				replay := cur - expect
				if replay > remaining {
					replay = remaining
				}
				for i := uint64(0); i < replay; i++ {
					res, ok := e.handle.ResultAt(int(expect + i))
					if !ok {
						code = wire.CodeBadRequest
						detail = "retry watermark outside the retained history window"
						break
					}
					buf = wire.AppendResult(buf, &res)
					deduped++
				}
				remaining -= deduped
				if ctrs := c.hub.opt.Counters; ctrs != nil && deduped > 0 {
					ctrs.DedupedPlays.Add(int64(deduped))
				}
			}
		}
		for i := uint64(0); code == wire.CodeOK && i < remaining; i++ {
			res, err := e.handle.Play(c.ctx)
			if err != nil {
				code, detail = ErrCode(err), err.Error()
				break
			}
			buf = wire.AppendResult(buf, &res)
		}
		c.send(wire.FinishResults(buf, code, detail, deduped))
		wsRoundTrip.Record(time.Since(t0))
	})
	if !ok {
		return c.sendError(m.ReqID, wire.CodeUnavailable, "authority shutting down")
	}
	return true
}

// handlePlayBatch is handlePlay with the batched execution path: after
// the same watermark dedup, the remaining rounds run as one PlayN call —
// one session lock, one batch WAL record — instead of N independent
// plays. Results stream into the same MsgResults frame shape, so clients
// decode both replies identically.
func (c *wsConn) handlePlayBatch(m wire.PlayBatch) bool {
	t0 := time.Now()
	e := c.lookup(m.Ref)
	if e == nil {
		return c.sendError(m.ReqID, wire.CodeNotFound, "unknown ref")
	}
	rounds := m.Rounds
	if rounds == 0 {
		rounds = 1
	}
	if rounds > c.hub.opt.MaxRounds {
		return c.sendError(m.ReqID, wire.CodeBadRequest, "rounds exceeds limit")
	}
	ok := c.hub.opt.Shards.Submit(e.handle.ID(), func() {
		buf := wire.AppendResultsHeader(c.hub.getBuf(), m.ReqID, e.ref)
		code, detail := wire.CodeOK, ""
		var deduped uint64
		remaining := rounds
		if m.Expect > 0 {
			expect := m.Expect - 1
			if cur := uint64(e.handle.Stats().Rounds); cur > expect {
				replay := cur - expect
				if replay > remaining {
					replay = remaining
				}
				for i := uint64(0); i < replay; i++ {
					res, ok := e.handle.ResultAt(int(expect + i))
					if !ok {
						code = wire.CodeBadRequest
						detail = "retry watermark outside the retained history window"
						break
					}
					buf = wire.AppendResult(buf, &res)
					deduped++
				}
				remaining -= deduped
				if ctrs := c.hub.opt.Counters; ctrs != nil && deduped > 0 {
					ctrs.DedupedPlays.Add(int64(deduped))
				}
			}
		}
		if code == wire.CodeOK && remaining > 0 {
			if bh, isBatch := e.handle.(BatchHandle); isBatch {
				_, err := bh.PlayN(c.ctx, int(remaining), func(res core.RoundResult) error {
					// The sink's result aliases session scratch; encoding
					// here, before the next round, is the required copy.
					buf = wire.AppendResult(buf, &res)
					return nil
				})
				if err != nil {
					code, detail = ErrCode(err), err.Error()
				}
			} else {
				for i := uint64(0); code == wire.CodeOK && i < remaining; i++ {
					res, err := e.handle.Play(c.ctx)
					if err != nil {
						code, detail = ErrCode(err), err.Error()
						break
					}
					buf = wire.AppendResult(buf, &res)
				}
			}
		}
		c.send(wire.FinishResults(buf, code, detail, deduped))
		wsRoundTrip.Record(time.Since(t0))
	})
	if !ok {
		return c.sendError(m.ReqID, wire.CodeUnavailable, "authority shutting down")
	}
	return true
}

func (c *wsConn) handleSubscribe(m wire.Subscribe) bool {
	e := c.lookup(m.Ref)
	if e == nil {
		return c.sendError(m.ReqID, wire.CodeNotFound, "unknown ref")
	}
	e.evMu.Lock()
	already := e.unsub != nil
	e.evMu.Unlock()
	if already {
		return c.sendError(m.ReqID, wire.CodeExists, "already subscribed")
	}
	// A non-zero Since is a resume token: the client re-subscribed after
	// a disconnect. The subscription below always starts a fresh delta
	// encoder, so the first event is self-contained — the token's job is
	// client-side (distinguishing replayed events from new ones), the
	// server just counts the resume.
	if m.Since > 0 {
		if ctrs := c.hub.opt.Counters; ctrs != nil {
			ctrs.ResumedSubscriptions.Add(1)
		}
	}
	unsub := e.handle.Subscribe(core.ObserverFunc(func(ev core.Event) {
		e.evMu.Lock()
		defer e.evMu.Unlock()
		buf := c.hub.getBuf()
		if e.lagged > 0 {
			buf = wire.AppendLag(buf, e.ref, e.lagged)
		}
		buf = e.enc.Append(buf, e.ref, &ev)
		if c.trySend(buf) {
			e.lagged = 0
			return
		}
		// Dropped: roll back to full encoding and owe the subscriber a
		// lag notice on the next delivered event.
		e.lagged++
		e.enc.Reset()
		if ctrs := c.hub.opt.Counters; ctrs != nil {
			ctrs.EventsDropped.Add(1)
		}
	}))
	e.evMu.Lock()
	if e.unsub != nil { // raced with a concurrent subscribe
		e.evMu.Unlock()
		unsub()
		return c.sendError(m.ReqID, wire.CodeExists, "already subscribed")
	}
	e.unsub = unsub
	e.evMu.Unlock()
	return c.send(wire.AppendOK(c.hub.getBuf(), m.ReqID))
}

func (c *wsConn) handleCloseSession(m wire.RefReq) bool {
	e := c.lookup(m.Ref)
	if e == nil {
		return c.sendError(m.ReqID, wire.CodeNotFound, "unknown ref")
	}
	e.detach()
	c.mu.Lock()
	delete(c.refs, m.Ref)
	c.mu.Unlock()
	if err := c.hub.backend.Remove(e.handle.ID()); err != nil {
		return c.sendError(m.ReqID, ErrCode(err), err.Error())
	}
	return c.send(wire.AppendOK(c.hub.getBuf(), m.ReqID))
}

// handleSnapshot runs on the session's shard loop so the digest reflects
// a quiescent point between plays.
func (c *wsConn) handleSnapshot(m wire.RefReq) bool {
	e := c.lookup(m.Ref)
	if e == nil {
		return c.sendError(m.ReqID, wire.CodeNotFound, "unknown ref")
	}
	ok := c.hub.opt.Shards.Submit(e.handle.ID(), func() {
		snap, persisted, err := e.handle.Snapshot()
		if err != nil {
			c.sendError(m.ReqID, ErrCode(err), err.Error())
			return
		}
		c.send(wire.AppendSnapshotReply(c.hub.getBuf(), m.ReqID,
			uint64(snap.Rounds), snap.Digest, persisted))
	})
	if !ok {
		return c.sendError(m.ReqID, wire.CodeUnavailable, "authority shutting down")
	}
	return true
}
