// Package hub is the authority's streaming transport: a WebSocket
// endpoint (RFC 6455, implemented directly on net.Conn — the module has
// no dependencies) multiplexing many hosted sessions per connection,
// and a pool of authoritative shard loops that own those sessions.
//
// The shape follows the one-goroutine-owns-the-world architecture: every
// session is pinned to a shard by FNV-1a hash of its id, all plays for a
// session execute on that shard's single goroutine, and the network side
// only enqueues commands onto shard inboxes and dequeues encoded frames.
// Each connection has exactly one reader (decoding internal/wire command
// batches) and one writer goroutine draining a bounded outbox, coalescing
// queued frames into shared flushes.
//
// Backpressure is explicit and split by traffic class. Command replies
// (play results, acks) are never dropped: a full outbox blocks the shard
// loop briefly, and a peer that cannot absorb its backlog within the
// write deadline is closed (counted in StreamTimeouts). Events are
// droppable: a full outbox drops the event, the per-subscription delta
// encoder resets so the next delivered event is self-contained, and the
// subscriber is told how many events it missed via a MsgLag notice
// (counted in EventsDropped).
//
// The package exposes both sides of the protocol: Hub (the server,
// mounted at /ws) and Client (a multiplexed connection used by
// cmd/loadgen and the cross-transport tests). See DESIGN.md §10.
package hub
