// Package wire is the authority's compact binary wire protocol: the
// framing the WebSocket transport (internal/hub) speaks between clients
// and the shard loops.
//
// A connection carries a stream of messages. The WebSocket layer
// delimits each batch (one binary WebSocket message = one length-prefixed
// frame holding one or more wire messages back to back); within a batch,
// every message is self-delimiting — a type byte followed by a
// type-specific body built from unsigned varints, length-prefixed byte
// strings, and fixed 8-byte little-endian float64 bits. Integers that are
// semantically small (rounds, refs, agent ids, action indices) ride
// varints, so a typical play command is ~6 bytes and a round result
// ~15–30 bytes — versus several hundred bytes of JSON on the HTTP path.
//
// Encoding is allocation-free on the hot path: every Append* function
// appends into a caller-owned buffer (the hub recycles them through a
// pool), and round results stream item-by-item (AppendResultsHeader /
// AppendResult / FinishResults) so a batch of plays encodes as it
// executes with no intermediate collection.
//
// Decoding is defensive: Decoder never panics on malformed input, all
// lengths and element counts are bounded by the bytes actually present,
// and a sticky error poisons the rest of the batch (the connection is
// closed). FuzzWireDecode pins this property.
//
// Event frames are delta-encoded per subscription: an EventEncoder omits
// a play event's outcome and costs when they equal the previously
// delivered play's (flag bits say which fields are present), and the
// EventDecoder on the other side substitutes its retained copies. The
// encoder resets to full encoding after any dropped event, so a lag gap
// can never make the decoder reconstruct from stale state. See DESIGN.md
// §10 for the full frame layout and the safety argument.
package wire
