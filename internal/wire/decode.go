package wire

// Results is the fully decoded form of a MsgResults reply, produced by
// DecodeAny (hot paths stream DecodeResultItem instead and reuse one
// scratch Result).
type Results struct {
	ReqID, Ref uint64
	Results    []Result
	Code       uint64
	Detail     string
	Deduped    uint64
}

// EventFrame pairs a pushed event with its subscription ref.
type EventFrame struct {
	Ref   uint64
	Event Event
}

func cloneResult(r *Result) Result {
	c := *r
	c.Outcome = append([]int(nil), r.Outcome...)
	c.Costs = append([]float64(nil), r.Costs...)
	c.Fouls = append([]Foul(nil), r.Fouls...)
	c.Convicted = append([]int(nil), r.Convicted...)
	c.Excluded = append([]int(nil), r.Excluded...)
	return c
}

// DecodeAny decodes the next message in the frame, including its type
// byte, and returns the decoded struct. MsgEvent frames are expanded
// through evDec (one per ref on real connections; the fuzz target shares
// one). It never panics on malformed input: any structural problem
// surfaces as ErrMalformed.
func DecodeAny(d *Decoder, evDec *EventDecoder) (any, error) {
	typ := d.Byte()
	if err := d.Err(); err != nil {
		return nil, err
	}
	switch typ {
	case MsgHello:
		return DecodeHello(d)
	case MsgWelcome:
		return DecodeWelcome(d)
	case MsgCreate:
		return DecodeCreate(d)
	case MsgAttach:
		return DecodeAttach(d)
	case MsgPlay:
		return DecodePlay(d)
	case MsgPlayBatch:
		return DecodePlayBatch(d)
	case MsgSubscribe:
		return DecodeSubscribe(d)
	case MsgUnsubscribe, MsgCloseSession, MsgStats, MsgSnapshot:
		r, err := DecodeRefReq(d)
		if err != nil {
			return nil, err
		}
		return struct {
			Type byte
			RefReq
		}{typ, r}, nil
	case MsgCreated:
		return DecodeCreated(d)
	case MsgResults:
		h, err := DecodeResultsHeader(d)
		if err != nil {
			return nil, err
		}
		out := Results{ReqID: h.ReqID, Ref: h.Ref}
		var scratch Result
		for {
			more, err := DecodeResultItem(d, &scratch)
			if err != nil {
				return nil, err
			}
			if !more {
				break
			}
			out.Results = append(out.Results, cloneResult(&scratch))
		}
		t, err := DecodeResultsTrailer(d)
		if err != nil {
			return nil, err
		}
		out.Code, out.Detail, out.Deduped = t.Code, t.Detail, t.Deduped
		return out, nil
	case MsgError:
		return DecodeError(d)
	case MsgOK:
		return DecodeOK(d)
	case MsgStatsReply:
		reqID, st, err := DecodeStatsReply(d)
		if err != nil {
			return nil, err
		}
		return struct {
			ReqID uint64
			Stats Stats
		}{reqID, st}, nil
	case MsgSnapshotReply:
		return DecodeSnapshotReply(d)
	case MsgEvent:
		ref := d.Uvarint()
		ev, err := evDec.Decode(d)
		if err != nil {
			return EventFrame{}, err
		}
		return EventFrame{Ref: ref, Event: ev}, nil
	case MsgLag:
		return DecodeLag(d)
	default:
		d.fail()
		return nil, d.Err()
	}
}
