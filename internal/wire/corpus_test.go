package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

const corpusDir = "testdata/fuzz/FuzzWireDecode"

// TestFuzzCorpusCheckedIn keeps the seed corpus in sync with fuzzSeeds:
// every seed must exist under testdata/fuzz/FuzzWireDecode in the native
// `go test fuzz v1` format, so `go test -run Fuzz` replays them even
// without -fuzz. Run with WIRE_WRITE_CORPUS=1 to regenerate after
// changing the wire format.
func TestFuzzCorpusCheckedIn(t *testing.T) {
	seeds := fuzzSeeds()
	if os.Getenv("WIRE_WRITE_CORPUS") != "" {
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			name := filepath.Join(corpusDir, fmt.Sprintf("seed-%02d", i))
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, seed := range seeds {
		name := filepath.Join(corpusDir, fmt.Sprintf("seed-%02d", i))
		got, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("missing corpus entry (regenerate with WIRE_WRITE_CORPUS=1): %v", err)
		}
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		if string(got) != want {
			t.Errorf("%s is stale (regenerate with WIRE_WRITE_CORPUS=1)", name)
		}
	}
}
