package wire

import (
	"testing"

	"gameauthority/internal/audit"
	"gameauthority/internal/core"
	"gameauthority/internal/game"
)

// FuzzWireDecode feeds arbitrary bytes through the full decode surface.
// Malformed frames must return an error — never panic, never allocate
// unboundedly (the decoder bounds every count by the remaining bytes).
// The checked-in corpus under testdata/fuzz/FuzzWireDecode seeds the
// fuzzer with one valid encoding of every message type plus truncations.
func FuzzWireDecode(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > MaxPayload {
			return
		}
		d := NewDecoder(data)
		var evDec EventDecoder
		for d.Len() > 0 {
			if _, err := DecodeAny(&d, &evDec); err != nil {
				if d.Err() == nil && err != ErrMalformed {
					// Decode errors must come from the bounds-checked
					// decoder or the malformed sentinel, not ad-hoc paths
					// that might leave the decoder mid-message.
					t.Fatalf("error %v with clean decoder state", err)
				}
				return
			}
		}
	})
}

// fuzzSeeds builds one valid frame per message type (concatenations
// included) so the fuzzer starts from the interesting part of the input
// space instead of rediscovering the format.
func fuzzSeeds() [][]byte {
	res := core.RoundResult{
		Round:     3,
		Outcome:   game.Profile{1, 0, 2},
		Costs:     []float64{0.5, -1, 2},
		Verdict:   audit.Verdict{Fouls: []audit.Foul{{Agent: 2, Reason: audit.ReasonIllegitimateAction, Detail: "off-menu"}}},
		Convicted: []int{2},
		Excluded:  []int{2},
		Pulse:     9,
	}
	results := AppendResultsHeader(nil, 5, 1)
	results = AppendResult(results, &res)
	results = FinishResults(results, CodeOK, "", 0)

	st := core.SessionStats{
		Kind: core.KindRRA, Players: 3, Rounds: 10, Fouls: 1, Convictions: 1,
		CumulativeCost: []float64{1, 2, 3}, Excluded: []bool{false, false, true},
		MaxLoad: 4, Pulses: 7, Messages: 21,
	}

	var enc EventEncoder
	ev1 := core.Event{Kind: core.EventPlay, Round: 0, Outcome: game.Profile{1, 1}, Costs: []float64{2, 2}}
	ev2 := core.Event{Kind: core.EventPlay, Round: 1, Outcome: game.Profile{1, 1}, Costs: []float64{2, 2}}
	events := enc.Append(nil, 4, &ev1)
	events = enc.Append(events, 4, &ev2)

	seeds := [][]byte{
		AppendHello(nil, Version, FlagReconnect),
		AppendWelcome(nil, Version, 4),
		AppendCreate(nil, 1, []byte(`{"id":"s","game":"pd"}`)),
		AppendAttach(nil, 2, "session-1"),
		AppendPlay(nil, 3, 1, 100, 7),
		AppendPlayBatch(nil, 9, 1, 100, 7),
		AppendSubscribe(nil, 4, 1, 11),
		AppendRefReq(nil, MsgUnsubscribe, 5, 1),
		AppendRefReq(nil, MsgCloseSession, 6, 1),
		AppendRefReq(nil, MsgStats, 7, 1),
		AppendRefReq(nil, MsgSnapshot, 8, 1),
		AppendCreated(nil, 1, 1, "session-1", 3),
		AppendError(nil, 2, CodeNotFound, "no such session"),
		AppendOK(nil, 4),
		AppendSnapshotReply(nil, 8, 42, "0123abcd", true),
		AppendLag(nil, 1, 12),
		AppendStatsReply(nil, 7, &st),
		results,
		events,
	}
	// One frame with every message back to back: exercises the
	// self-delimiting property.
	var all []byte
	for _, s := range seeds {
		all = append(all, s...)
	}
	seeds = append(seeds, all)
	// Truncations of the composite frame probe every boundary.
	for _, cut := range []int{1, len(all) / 3, len(all) / 2, len(all) - 1} {
		if cut > 0 && cut < len(all) {
			seeds = append(seeds, all[:cut])
		}
	}
	return seeds
}
