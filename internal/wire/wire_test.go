package wire

import (
	"bytes"
	"math"
	"testing"

	"gameauthority/internal/audit"
	"gameauthority/internal/core"
	"gameauthority/internal/game"
)

func TestCommandRoundTrips(t *testing.T) {
	var buf []byte
	buf = AppendHello(buf, Version, FlagReconnect)
	buf = AppendCreate(buf, 1, []byte(`{"id":"s1","game":"pd"}`))
	buf = AppendAttach(buf, 2, "s1")
	buf = AppendPlay(buf, 3, 7, 25, 10)
	buf = AppendPlayBatch(buf, 12, 7, 50, 26)
	buf = AppendSubscribe(buf, 4, 7, 42)
	buf = AppendRefReq(buf, MsgStats, 5, 7)
	buf = AppendWelcome(buf, Version, 8)
	buf = AppendCreated(buf, 1, 7, "s1", 9)
	buf = AppendError(buf, 9, CodeNotFound, "unknown ref")
	buf = AppendOK(buf, 4)
	buf = AppendSnapshotReply(buf, 6, 42, "deadbeef", true)
	buf = AppendLag(buf, 7, 3)

	d := NewDecoder(buf)
	var evDec EventDecoder
	var got []any
	for d.Len() > 0 {
		msg, err := DecodeAny(&d, &evDec)
		if err != nil {
			t.Fatalf("DecodeAny: %v (after %d messages)", err, len(got))
		}
		got = append(got, msg)
	}
	if len(got) != 13 {
		t.Fatalf("decoded %d messages, want 13", len(got))
	}
	if h := got[0].(Hello); h.Version != Version || h.Flags != FlagReconnect {
		t.Errorf("hello = %+v", h)
	}
	if c := got[1].(Create); c.ReqID != 1 || string(c.Spec) != `{"id":"s1","game":"pd"}` {
		t.Errorf("create = %+v", c)
	}
	if a := got[2].(Attach); a.ReqID != 2 || a.ID != "s1" {
		t.Errorf("attach = %+v", a)
	}
	if p := got[3].(Play); p.ReqID != 3 || p.Ref != 7 || p.Rounds != 25 || p.Expect != 10 {
		t.Errorf("play = %+v", p)
	}
	if p := got[4].(PlayBatch); p.ReqID != 12 || p.Ref != 7 || p.Rounds != 50 || p.Expect != 26 {
		t.Errorf("play batch = %+v", p)
	}
	if s := got[5].(Subscribe); s.ReqID != 4 || s.Ref != 7 || s.Since != 42 {
		t.Errorf("subscribe = %+v", s)
	}
	if w := got[7].(Welcome); w.Shards != 8 {
		t.Errorf("welcome = %+v", w)
	}
	if c := got[8].(Created); c.Ref != 7 || c.ID != "s1" || c.Rounds != 9 {
		t.Errorf("created = %+v", c)
	}
	if e := got[9].(ErrorMsg); e.Code != CodeNotFound || e.Detail != "unknown ref" {
		t.Errorf("error = %+v", e)
	}
	if s := got[11].(SnapshotReply); s.Rounds != 42 || s.Digest != "deadbeef" || !s.Persisted {
		t.Errorf("snapshot reply = %+v", s)
	}
	if l := got[12].(Lag); l.Ref != 7 || l.Dropped != 3 {
		t.Errorf("lag = %+v", l)
	}
}

func TestResultsRoundTrip(t *testing.T) {
	r1 := core.RoundResult{
		Round:   0,
		Outcome: game.Profile{1, 0},
		Costs:   []float64{-1, 2.5},
	}
	r2 := core.RoundResult{
		Round:   1,
		Outcome: game.Profile{0, 3},
		Verdict: audit.Verdict{Fouls: []audit.Foul{
			{Agent: 1, Reason: audit.ReasonIllegitimateAction, Detail: "action 3 outside Π"},
		}},
		Convicted: []int{1},
		Excluded:  []int{1},
		Costs:     []float64{0, math.Inf(1)},
		Pulse:     17,
	}
	buf := AppendResultsHeader(nil, 11, 7)
	buf = AppendResult(buf, &r1)
	buf = AppendResult(buf, &r2)
	buf = FinishResults(buf, CodeUnavailable, "pulse budget exhausted", 1)

	d := NewDecoder(buf)
	if typ := d.Byte(); typ != MsgResults {
		t.Fatalf("type = %#x", typ)
	}
	h, err := DecodeResultsHeader(&d)
	if err != nil || h.ReqID != 11 || h.Ref != 7 {
		t.Fatalf("header = %+v, err %v", h, err)
	}
	var out Result
	more, err := DecodeResultItem(&d, &out)
	if err != nil || !more {
		t.Fatalf("item 1: more=%v err=%v", more, err)
	}
	if out.Round != 0 || len(out.Outcome) != 2 || out.Outcome[1] != 0 ||
		len(out.Fouls) != 0 || out.Costs[1] != 2.5 {
		t.Errorf("result 1 = %+v", out)
	}
	more, err = DecodeResultItem(&d, &out)
	if err != nil || !more {
		t.Fatalf("item 2: more=%v err=%v", more, err)
	}
	if out.Round != 1 || out.Outcome[1] != 3 || len(out.Fouls) != 1 ||
		out.Fouls[0].Agent != 1 || audit.Reason(out.Fouls[0].Reason) != audit.ReasonIllegitimateAction ||
		out.Fouls[0].Detail != "action 3 outside Π" ||
		len(out.Convicted) != 1 || len(out.Excluded) != 1 ||
		!math.IsInf(out.Costs[1], 1) || out.Pulse != 17 {
		t.Errorf("result 2 = %+v", out)
	}
	more, err = DecodeResultItem(&d, &out)
	if err != nil || more {
		t.Fatalf("terminator: more=%v err=%v", more, err)
	}
	tr, err := DecodeResultsTrailer(&d)
	if err != nil || tr.Code != CodeUnavailable || tr.Detail != "pulse budget exhausted" || tr.Deduped != 1 {
		t.Fatalf("trailer = %+v, err %v", tr, err)
	}
	if d.Len() != 0 {
		t.Errorf("%d trailing bytes", d.Len())
	}
}

func TestStatsRoundTrip(t *testing.T) {
	st := core.SessionStats{
		Kind:           core.KindDistributed,
		Players:        4,
		Rounds:         100,
		Fouls:          3,
		Convictions:    1,
		CumulativeCost: []float64{1, 2, 3, 4.5},
		Excluded:       []bool{false, true, false, true},
		MaxLoad:        9,
		Pulses:         1234,
		Messages:       99999,
	}
	st.Protocol.Commitments = 7
	st.Protocol.Reveals = 6
	st.Protocol.Agreements = 5

	buf := AppendStatsReply(nil, 21, &st)
	d := NewDecoder(buf)
	if typ := d.Byte(); typ != MsgStatsReply {
		t.Fatalf("type = %#x", typ)
	}
	reqID, got, err := DecodeStatsReply(&d)
	if err != nil || reqID != 21 {
		t.Fatalf("reqID=%d err=%v", reqID, err)
	}
	if got.Players != 4 || got.Rounds != 100 || got.Fouls != 3 || got.Convictions != 1 {
		t.Errorf("counters = %+v", got)
	}
	if len(got.CumulativeCost) != 4 || got.CumulativeCost[3] != 4.5 {
		t.Errorf("costs = %v", got.CumulativeCost)
	}
	if len(got.Excluded) != 2 || got.Excluded[0] != 1 || got.Excluded[1] != 3 {
		t.Errorf("excluded = %v", got.Excluded)
	}
	if got.MaxLoad != 9 || got.Pulses != 1234 || got.Messages != 99999 ||
		got.Commitments != 7 || got.Reveals != 6 || got.Agreements != 5 {
		t.Errorf("stats = %+v", got)
	}
}

// TestEventDelta pins the delta encoding: repeated play outcomes/costs
// are suppressed, a changed value reappears, and a Reset (dropped event)
// forces the next event to be self-contained.
func TestEventDelta(t *testing.T) {
	var enc EventEncoder
	var dec EventDecoder

	ev := func(round int, outcome []int, costs []float64) core.Event {
		return core.Event{Kind: core.EventPlay, Round: round, Outcome: outcome, Costs: costs}
	}
	decode := func(frame []byte) Event {
		t.Helper()
		d := NewDecoder(frame)
		if typ := d.Byte(); typ != MsgEvent {
			t.Fatalf("type = %#x", typ)
		}
		if ref := d.Uvarint(); ref != 7 {
			t.Fatalf("ref = %d", ref)
		}
		out, err := dec.Decode(&d)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if d.Len() != 0 {
			t.Fatalf("%d trailing bytes", d.Len())
		}
		return out
	}

	e1 := ev(0, []int{1, 1}, []float64{2, 2})
	full := enc.Append(nil, 7, &e1)
	got := decode(full)
	if got.Round != 0 || len(got.Outcome) != 2 || got.Outcome[0] != 1 || got.Costs[1] != 2 {
		t.Fatalf("event 1 = %+v", got)
	}

	// Identical outcome/costs: the frame must shrink and still decode to
	// the same values.
	e2 := ev(1, []int{1, 1}, []float64{2, 2})
	delta := enc.Append(nil, 7, &e2)
	if len(delta) >= len(full) {
		t.Fatalf("delta frame (%d bytes) not smaller than full frame (%d bytes)", len(delta), len(full))
	}
	got = decode(delta)
	if got.Round != 1 || len(got.Outcome) != 2 || got.Outcome[1] != 1 || got.Costs[0] != 2 {
		t.Fatalf("event 2 = %+v", got)
	}

	// Changed outcome reappears on the wire.
	e3 := ev(2, []int{0, 1}, []float64{2, 2})
	frame := enc.Append(nil, 7, &e3)
	got = decode(frame)
	if got.Outcome[0] != 0 || got.Costs[1] != 2 {
		t.Fatalf("event 3 = %+v", got)
	}

	// After a drop (Reset), the next event must be full even if equal.
	enc.Reset()
	e4 := ev(3, []int{0, 1}, []float64{2, 2})
	frame = enc.Append(nil, 7, &e4)
	if len(frame) <= len(delta) {
		t.Fatalf("post-reset frame (%d bytes) should carry full outcome/costs", len(frame))
	}
	got = decode(frame)
	if got.Round != 3 || got.Outcome[1] != 1 {
		t.Fatalf("event 4 = %+v", got)
	}

	// Non-play events carry their own fields and leave delta state alone.
	conv := core.Event{Kind: core.EventConviction, Round: 4, Agent: 1, Detail: "excluded"}
	frame = enc.Append(nil, 7, &conv)
	got = decode(frame)
	if got.Kind != uint8(core.EventConviction) || got.Agent != 1 || got.Detail != "excluded" {
		t.Fatalf("conviction = %+v", got)
	}
	e5 := ev(5, []int{0, 1}, []float64{2, 2})
	frame = enc.Append(nil, 7, &e5)
	got = decode(frame)
	if len(got.Outcome) != 2 || got.Outcome[1] != 1 {
		t.Fatalf("event 5 (post-conviction delta) = %+v", got)
	}
}

func TestMalformedInputsError(t *testing.T) {
	cases := map[string][]byte{
		"empty type only":     {},
		"unknown type":        {0xFF, 0x01},
		"truncated varint":    {MsgPlay, 0x80},
		"string over length":  append([]byte{MsgAttach, 0x01}, 0x20, 'a', 'b'),
		"huge count":          {MsgStatsReply, 0x01, 0x00, 0x01, 0x01, 0x01, 0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F},
		"bad results marker":  append(AppendResultsHeader(nil, 1, 1), 0x02),
		"float short":         {MsgEvent, 0x01, 0x05, 0x01, 0x02, 0x00, 0x01, 0x11, 0x22},
		"oversized payload":   append([]byte{MsgCreate, 0x01}, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F),
		"negative-ish varint": {MsgPlay, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},
	}
	for name, frame := range cases {
		d := NewDecoder(frame)
		var evDec EventDecoder
		if _, err := DecodeAny(&d, &evDec); err == nil && name != "negative-ish varint" {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestDecoderBoundsNoAlloc(t *testing.T) {
	// A claimed element count far beyond the actual bytes must fail
	// before allocating: build a frame claiming 2^30 ints with 3 bytes of
	// body.
	frame := []byte{MsgStatsReply, 0x01, 0x00, 0x01, 0x01, 0x01, 0x01}
	frame = AppendUvarint(frame, 1<<30)
	frame = append(frame, 1, 2, 3)
	d := NewDecoder(frame)
	var evDec EventDecoder
	if _, err := DecodeAny(&d, &evDec); err == nil {
		t.Fatal("oversized count decoded without error")
	}
}

func TestAppendUvarintMatchesStdlib(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 1 << 20, math.MaxUint64} {
		got := AppendUvarint(nil, v)
		d := NewDecoder(got)
		if back := d.Uvarint(); back != v || d.Err() != nil {
			t.Errorf("uvarint %d round-tripped to %d (err %v)", v, back, d.Err())
		}
		if !bytes.Equal(got, AppendUvarint([]byte{}, v)) {
			t.Errorf("append not deterministic for %d", v)
		}
	}
}
