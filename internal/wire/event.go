package wire

import (
	"gameauthority/internal/core"
)

// Event field-presence flags. For play events, an absent outcome or costs
// field means "unchanged since the previous play event on this ref" (the
// delta encoding); for all other kinds, absent means empty.
const (
	evOutcome byte = 1 << iota
	evCosts
	evFouls
	evAgent
	evWinner
	evPulse
	evDetail
)

// Event is the decoded form of one session event. Slices alias
// decoder-owned state, valid until the next Decode on the same
// EventDecoder. Seq is the per-session sequence number stamped by the
// session's observer hub; a resumed subscriber uses it to tell replayed
// events from new ones.
type Event struct {
	Kind    uint8
	Seq     uint64
	Round   int
	Outcome []int
	Costs   []float64
	Fouls   []Foul
	Agent   int
	Winner  int
	Pulse   int
	Detail  string
}

// EventEncoder delta-encodes one subscription's event stream. It retains
// the outcome and costs of the last play event it successfully handed to
// the outbox; when the next play's values are identical (common in
// equilibrium play), the fields are omitted. The hub must call Reset
// after any event it failed to enqueue, so the decoder can never be asked
// to fill a gap from state it never received.
type EventEncoder struct {
	prevOutcome []int
	prevCosts   []float64
	have        bool
}

// Reset forces the next event to encode in full. Call after a dropped
// event (the subscriber will see a MsgLag and then a self-contained
// event).
func (e *EventEncoder) Reset() { e.have = false }

// Append encodes a MsgEvent for ev and updates the delta state. The
// caller must only keep the state (i.e. not Reset) if the returned buffer
// is actually delivered or queued for delivery.
func (e *EventEncoder) Append(dst []byte, ref uint64, ev *core.Event) []byte {
	dst = append(dst, MsgEvent)
	dst = AppendUvarint(dst, ref)
	dst = AppendUvarint(dst, ev.Seq)
	dst = append(dst, byte(ev.Kind))

	isPlay := ev.Kind == core.EventPlay
	var flags byte
	if isPlay {
		if !e.have || !intsEqual(e.prevOutcome, ev.Outcome) {
			flags |= evOutcome
		}
		if !e.have || !floatsEqual(e.prevCosts, ev.Costs) {
			flags |= evCosts
		}
	} else {
		if len(ev.Outcome) > 0 {
			flags |= evOutcome
		}
		if len(ev.Costs) > 0 {
			flags |= evCosts
		}
	}
	if len(ev.Fouls) > 0 {
		flags |= evFouls
	}
	if ev.Kind == core.EventConviction {
		flags |= evAgent
	}
	if ev.Kind == core.EventElection {
		flags |= evWinner
	}
	if ev.Pulse != 0 {
		flags |= evPulse
	}
	if ev.Detail != "" {
		flags |= evDetail
	}

	dst = append(dst, flags)
	dst = appendInt(dst, ev.Round)
	if flags&evOutcome != 0 {
		dst = appendInts(dst, ev.Outcome)
	}
	if flags&evCosts != 0 {
		dst = appendFloats(dst, ev.Costs)
	}
	if flags&evFouls != 0 {
		dst = AppendUvarint(dst, uint64(len(ev.Fouls)))
		for _, f := range ev.Fouls {
			dst = appendInt(dst, f.Agent)
			dst = append(dst, byte(f.Reason))
			dst = appendString(dst, f.Detail)
		}
	}
	if flags&evAgent != 0 {
		dst = appendInt(dst, ev.Agent)
	}
	if flags&evWinner != 0 {
		dst = appendInt(dst, ev.Winner)
	}
	if flags&evPulse != 0 {
		dst = appendInt(dst, ev.Pulse)
	}
	if flags&evDetail != 0 {
		dst = appendString(dst, ev.Detail)
	}

	if isPlay {
		e.prevOutcome = append(e.prevOutcome[:0], ev.Outcome...)
		e.prevCosts = append(e.prevCosts[:0], ev.Costs...)
		e.have = true
	}
	return dst
}

// EventDecoder reconstructs one subscription's event stream, retaining
// the last play outcome and costs so delta frames can be expanded.
type EventDecoder struct {
	prevOutcome []int
	prevCosts   []float64
	fouls       []Foul
}

// Decode decodes a MsgEvent body (after the type byte and ref).
func (e *EventDecoder) Decode(d *Decoder) (Event, error) {
	var ev Event
	ev.Seq = d.Uvarint()
	ev.Kind = d.Byte()
	flags := d.Byte()
	ev.Round = d.Int()
	isPlay := ev.Kind == uint8(core.EventPlay)
	if flags&evOutcome != 0 {
		e.prevOutcome = d.Ints(e.prevOutcome)
		ev.Outcome = e.prevOutcome
	} else if isPlay {
		ev.Outcome = e.prevOutcome
	}
	if flags&evCosts != 0 {
		e.prevCosts = d.Floats(e.prevCosts)
		ev.Costs = e.prevCosts
	} else if isPlay {
		ev.Costs = e.prevCosts
	}
	if flags&evFouls != 0 {
		n := d.Uvarint()
		if d.Err() == nil && n > uint64(d.Len()) {
			d.fail()
		}
		e.fouls = e.fouls[:0]
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			e.fouls = append(e.fouls, Foul{
				Agent:  d.Int(),
				Reason: d.Byte(),
				Detail: d.String(),
			})
		}
		ev.Fouls = e.fouls
	}
	if flags&evAgent != 0 {
		ev.Agent = d.Int()
	}
	if flags&evWinner != 0 {
		ev.Winner = d.Int()
	}
	if flags&evPulse != 0 {
		ev.Pulse = d.Int()
	}
	if flags&evDetail != 0 {
		ev.Detail = d.String()
	}
	return ev, d.Err()
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
