package wire

import (
	"encoding/binary"
	"errors"
	"math"
)

// Version is the protocol version exchanged in Hello/Welcome. A server
// refuses clients speaking a different major version.
//
// Version 2 added reconnect/resume support: Hello carries a flags word
// (FlagReconnect), Play carries an Expect watermark for idempotent
// retries, Subscribe carries a Since resume token, Created reports the
// session's completed rounds, events carry per-session sequence numbers,
// and the results trailer reports how many rounds were deduplicated.
const Version = 2

// MaxPayload bounds any single length-prefixed field (spec JSON, detail
// strings). Anything larger is malformed.
const MaxPayload = 1 << 22

// Message type bytes. Client→server commands sit below 0x40, server→client
// replies and pushes at 0x40 and above.
const (
	MsgHello        byte = 0x01 // version, flags
	MsgCreate       byte = 0x02 // reqID, spec JSON bytes
	MsgAttach       byte = 0x03 // reqID, session id
	MsgPlay         byte = 0x04 // reqID, ref, rounds, expect
	MsgSubscribe    byte = 0x05 // reqID, ref, since
	MsgUnsubscribe  byte = 0x06 // reqID, ref
	MsgCloseSession byte = 0x07 // reqID, ref
	MsgStats        byte = 0x08 // reqID, ref
	MsgSnapshot     byte = 0x09 // reqID, ref
	MsgPlayBatch    byte = 0x0A // reqID, ref, rounds, expect (journaled as one batch record)

	MsgWelcome       byte = 0x40 // version, shards
	MsgCreated       byte = 0x41 // reqID, ref, session id, rounds
	MsgResults       byte = 0x42 // reqID, ref, results stream, errCode, errMsg, deduped
	MsgError         byte = 0x43 // reqID, code, detail
	MsgOK            byte = 0x44 // reqID
	MsgStatsReply    byte = 0x45 // reqID, stats
	MsgSnapshotReply byte = 0x46 // reqID, rounds, digest, persisted
	MsgEvent         byte = 0x47 // ref, seq, delta-encoded event
	MsgLag           byte = 0x48 // ref, dropped count
)

// Hello flag bits.
const (
	// FlagReconnect marks a Hello sent by a client re-dialing after a
	// connection loss, so the server can count reconnects distinctly from
	// first connections.
	FlagReconnect uint64 = 1 << 0
)

// Error codes carried by MsgError and the MsgResults trailer.
const (
	CodeOK          uint64 = 0
	CodeBadRequest  uint64 = 1
	CodeNotFound    uint64 = 2
	CodeExists      uint64 = 3
	CodeUnavailable uint64 = 4
	CodeInternal    uint64 = 5
	CodeClosed      uint64 = 6
	// CodeBreakerOpen: the session's circuit breaker is open after
	// repeated store failures; the command was refused without touching
	// the session. Retry after the breaker's cool-down.
	CodeBreakerOpen uint64 = 7
)

// ErrMalformed is the sticky Decoder error for any out-of-bounds,
// overlong, or otherwise invalid input.
var ErrMalformed = errors.New("wire: malformed message")

// ---------------------------------------------------------------------------
// Append primitives. All encoders append into a caller-owned buffer and
// return the extended slice; none allocate beyond the buffer's own growth.

// AppendUvarint appends v in unsigned-varint encoding.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendInt(dst []byte, v int) []byte {
	return binary.AppendUvarint(dst, uint64(v))
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendInts(dst []byte, vs []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	return dst
}

func appendFloats(dst []byte, vs []float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = appendFloat(dst, v)
	}
	return dst
}

// ---------------------------------------------------------------------------
// Decoder: a bounds-checked cursor over one frame. Every accessor returns a
// zero value once the sticky error is set; callers check Err (or the error
// returned by the per-message Decode helpers) after decoding a message.
// Returned byte and element slices alias either the input frame or
// decoder-owned scratch, valid until the next decode call.

type Decoder struct {
	b   []byte
	err error
}

// NewDecoder wraps one frame (the payload of a binary WebSocket message).
func NewDecoder(b []byte) Decoder { return Decoder{b: b} }

// Len reports the undecoded bytes remaining.
func (d *Decoder) Len() int { return len(d.b) }

// Err reports the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = ErrMalformed
	}
	d.b = nil
}

// Byte consumes one byte.
func (d *Decoder) Byte() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// Uvarint consumes one unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Int consumes one unsigned varint that must fit a non-negative int.
func (d *Decoder) Int() int {
	v := d.Uvarint()
	if v > math.MaxInt64/2 {
		d.fail()
		return 0
	}
	return int(v)
}

// Float consumes one fixed 8-byte little-endian float64.
func (d *Decoder) Float() float64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

// Bytes consumes a length-prefixed byte string; the result aliases the
// frame.
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > MaxPayload || n > uint64(len(d.b)) {
		d.fail()
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

// String consumes a length-prefixed string (copied out of the frame).
func (d *Decoder) String() string { return string(d.Bytes()) }

// Ints consumes a count-prefixed varint slice into dst[:0]. The count is
// bounded by the bytes remaining, so malformed input cannot force a large
// allocation.
func (d *Decoder) Ints(dst []int) []int {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) { // each element is at least one byte
		d.fail()
		return nil
	}
	dst = dst[:0]
	for i := uint64(0); i < n; i++ {
		dst = append(dst, d.Int())
		if d.err != nil {
			return nil
		}
	}
	return dst
}

// Floats consumes a count-prefixed float64 slice into dst[:0].
func (d *Decoder) Floats(dst []float64) []float64 {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b))/8 {
		d.fail()
		return nil
	}
	dst = dst[:0]
	for i := uint64(0); i < n; i++ {
		dst = append(dst, d.Float())
		if d.err != nil {
			return nil
		}
	}
	return dst
}

// ---------------------------------------------------------------------------
// Handshake and command messages. Each Append* writes the type byte and
// body; each Decode* assumes the caller already consumed the type byte.

// Hello is the client's opening message.
type Hello struct{ Version, Flags uint64 }

// AppendHello encodes a MsgHello.
func AppendHello(dst []byte, version, flags uint64) []byte {
	dst = append(dst, MsgHello)
	dst = AppendUvarint(dst, version)
	return AppendUvarint(dst, flags)
}

// DecodeHello decodes a MsgHello body.
func DecodeHello(d *Decoder) (Hello, error) {
	h := Hello{Version: d.Uvarint(), Flags: d.Uvarint()}
	return h, d.Err()
}

// Welcome is the server's reply to Hello.
type Welcome struct{ Version, Shards uint64 }

// AppendWelcome encodes a MsgWelcome.
func AppendWelcome(dst []byte, version, shards uint64) []byte {
	dst = append(dst, MsgWelcome)
	dst = AppendUvarint(dst, version)
	return AppendUvarint(dst, shards)
}

// DecodeWelcome decodes a MsgWelcome body.
func DecodeWelcome(d *Decoder) (Welcome, error) {
	w := Welcome{Version: d.Uvarint(), Shards: d.Uvarint()}
	return w, d.Err()
}

// Create asks the server to host a session from a JSON spec (the same
// CreateSessionRequest document the HTTP API accepts; create is the cold
// path, so JSON inside the binary frame keeps one canonical spec format).
type Create struct {
	ReqID uint64
	Spec  []byte
}

// AppendCreate encodes a MsgCreate.
func AppendCreate(dst []byte, reqID uint64, spec []byte) []byte {
	dst = append(dst, MsgCreate)
	dst = AppendUvarint(dst, reqID)
	return appendBytes(dst, spec)
}

// DecodeCreate decodes a MsgCreate body. Spec aliases the frame.
func DecodeCreate(d *Decoder) (Create, error) {
	c := Create{ReqID: d.Uvarint(), Spec: d.Bytes()}
	return c, d.Err()
}

// Attach binds a connection-local ref to an existing session by id.
type Attach struct {
	ReqID uint64
	ID    string
}

// AppendAttach encodes a MsgAttach.
func AppendAttach(dst []byte, reqID uint64, id string) []byte {
	dst = append(dst, MsgAttach)
	dst = AppendUvarint(dst, reqID)
	return appendString(dst, id)
}

// DecodeAttach decodes a MsgAttach body.
func DecodeAttach(d *Decoder) (Attach, error) {
	a := Attach{ReqID: d.Uvarint(), ID: d.String()}
	return a, d.Err()
}

// Play runs up to Rounds plays on the session bound to Ref. Expect is an
// idempotency watermark: zero means "no expectation" (always play fresh
// rounds); a non-zero value encodes expectedRounds+1, the number of
// completed rounds the client believes the session has. When the session
// is already ahead of the expectation — a retried command whose original
// was applied before the connection died — the server replays the
// already-journaled results for the overlap instead of double-playing.
type Play struct{ ReqID, Ref, Rounds, Expect uint64 }

// AppendPlay encodes a MsgPlay.
func AppendPlay(dst []byte, reqID, ref, rounds, expect uint64) []byte {
	dst = append(dst, MsgPlay)
	dst = AppendUvarint(dst, reqID)
	dst = AppendUvarint(dst, ref)
	dst = AppendUvarint(dst, rounds)
	return AppendUvarint(dst, expect)
}

// DecodePlay decodes a MsgPlay body.
func DecodePlay(d *Decoder) (Play, error) {
	p := Play{ReqID: d.Uvarint(), Ref: d.Uvarint(), Rounds: d.Uvarint(), Expect: d.Uvarint()}
	return p, d.Err()
}

// PlayBatch asks for Rounds plays executed as one batch: the server runs
// them under a single session lock and journals all of them as one batch
// WAL record, instead of one record per round. The reply is the same
// MsgResults stream MsgPlay uses, and Expect carries the same watermark
// dedup semantics as Play.
type PlayBatch struct{ ReqID, Ref, Rounds, Expect uint64 }

// AppendPlayBatch encodes a MsgPlayBatch.
func AppendPlayBatch(dst []byte, reqID, ref, rounds, expect uint64) []byte {
	dst = append(dst, MsgPlayBatch)
	dst = AppendUvarint(dst, reqID)
	dst = AppendUvarint(dst, ref)
	dst = AppendUvarint(dst, rounds)
	return AppendUvarint(dst, expect)
}

// DecodePlayBatch decodes a MsgPlayBatch body.
func DecodePlayBatch(d *Decoder) (PlayBatch, error) {
	p := PlayBatch{ReqID: d.Uvarint(), Ref: d.Uvarint(), Rounds: d.Uvarint(), Expect: d.Uvarint()}
	return p, d.Err()
}

// Subscribe attaches an event stream to the session bound to Ref. Since
// is a resume token: zero asks for a fresh subscription; a non-zero
// value encodes lastSeq+1, the sequence number after the last event the
// client saw before losing its connection. The stream always restarts
// with a full-state (non-delta) event, so a resumed decoder never sees a
// delta against state it missed.
type Subscribe struct{ ReqID, Ref, Since uint64 }

// AppendSubscribe encodes a MsgSubscribe.
func AppendSubscribe(dst []byte, reqID, ref, since uint64) []byte {
	dst = append(dst, MsgSubscribe)
	dst = AppendUvarint(dst, reqID)
	dst = AppendUvarint(dst, ref)
	return AppendUvarint(dst, since)
}

// DecodeSubscribe decodes a MsgSubscribe body.
func DecodeSubscribe(d *Decoder) (Subscribe, error) {
	s := Subscribe{ReqID: d.Uvarint(), Ref: d.Uvarint(), Since: d.Uvarint()}
	return s, d.Err()
}

// RefReq is the shared shape of Unsubscribe, CloseSession, Stats, and
// Snapshot commands: a request id and a session ref.
type RefReq struct{ ReqID, Ref uint64 }

// AppendRefReq encodes one of the ref-only commands under the given type.
func AppendRefReq(dst []byte, typ byte, reqID, ref uint64) []byte {
	dst = append(dst, typ)
	dst = AppendUvarint(dst, reqID)
	return AppendUvarint(dst, ref)
}

// DecodeRefReq decodes a ref-only command body.
func DecodeRefReq(d *Decoder) (RefReq, error) {
	r := RefReq{ReqID: d.Uvarint(), Ref: d.Uvarint()}
	return r, d.Err()
}

// ---------------------------------------------------------------------------
// Replies.

// Created acknowledges Create/Attach with the assigned ref. Rounds is
// the session's completed-round count at bind time, seeding the client's
// idempotency watermark (see Play.Expect).
type Created struct {
	ReqID, Ref uint64
	ID         string
	Rounds     uint64
}

// AppendCreated encodes a MsgCreated.
func AppendCreated(dst []byte, reqID, ref uint64, id string, rounds uint64) []byte {
	dst = append(dst, MsgCreated)
	dst = AppendUvarint(dst, reqID)
	dst = AppendUvarint(dst, ref)
	dst = appendString(dst, id)
	return AppendUvarint(dst, rounds)
}

// DecodeCreated decodes a MsgCreated body.
func DecodeCreated(d *Decoder) (Created, error) {
	c := Created{ReqID: d.Uvarint(), Ref: d.Uvarint(), ID: d.String()}
	c.Rounds = d.Uvarint()
	return c, d.Err()
}

// ErrorMsg reports a failed command.
type ErrorMsg struct {
	ReqID, Code uint64
	Detail      string
}

// AppendError encodes a MsgError.
func AppendError(dst []byte, reqID, code uint64, detail string) []byte {
	dst = append(dst, MsgError)
	dst = AppendUvarint(dst, reqID)
	dst = AppendUvarint(dst, code)
	return appendString(dst, detail)
}

// DecodeError decodes a MsgError body.
func DecodeError(d *Decoder) (ErrorMsg, error) {
	e := ErrorMsg{ReqID: d.Uvarint(), Code: d.Uvarint(), Detail: d.String()}
	return e, d.Err()
}

// OK acknowledges a command with no payload (subscribe, unsubscribe,
// close).
type OK struct{ ReqID uint64 }

// AppendOK encodes a MsgOK.
func AppendOK(dst []byte, reqID uint64) []byte {
	dst = append(dst, MsgOK)
	return AppendUvarint(dst, reqID)
}

// DecodeOK decodes a MsgOK body.
func DecodeOK(d *Decoder) (OK, error) {
	o := OK{ReqID: d.Uvarint()}
	return o, d.Err()
}

// SnapshotReply carries the canonical digest of a session snapshot.
type SnapshotReply struct {
	ReqID     uint64
	Rounds    uint64
	Digest    string
	Persisted bool
}

// AppendSnapshotReply encodes a MsgSnapshotReply.
func AppendSnapshotReply(dst []byte, reqID, rounds uint64, digest string, persisted bool) []byte {
	dst = append(dst, MsgSnapshotReply)
	dst = AppendUvarint(dst, reqID)
	dst = AppendUvarint(dst, rounds)
	dst = appendString(dst, digest)
	p := byte(0)
	if persisted {
		p = 1
	}
	return append(dst, p)
}

// DecodeSnapshotReply decodes a MsgSnapshotReply body.
func DecodeSnapshotReply(d *Decoder) (SnapshotReply, error) {
	s := SnapshotReply{ReqID: d.Uvarint(), Rounds: d.Uvarint(), Digest: d.String()}
	s.Persisted = d.Byte() != 0
	return s, d.Err()
}

// Lag tells a subscriber how many events were dropped on its ref since
// the last delivered event. The next event after a lag is always encoded
// in full.
type Lag struct{ Ref, Dropped uint64 }

// AppendLag encodes a MsgLag.
func AppendLag(dst []byte, ref, dropped uint64) []byte {
	dst = append(dst, MsgLag)
	dst = AppendUvarint(dst, ref)
	return AppendUvarint(dst, dropped)
}

// DecodeLag decodes a MsgLag body.
func DecodeLag(d *Decoder) (Lag, error) {
	l := Lag{Ref: d.Uvarint(), Dropped: d.Uvarint()}
	return l, d.Err()
}
