package wire

import (
	"gameauthority/internal/core"
)

// Result field-presence flags: a result's flags byte says which optional
// fields follow, so honest 2-player plays (no fouls, no exclusions) cost
// a handful of bytes.
const (
	resFouls byte = 1 << iota
	resConvicted
	resExcluded
	resCosts
	resPulse
)

// Foul is the wire form of one judicial finding. Reason is the
// audit.Reason enum value.
type Foul struct {
	Agent  int
	Reason uint8
	Detail string
}

// Result is the decoded form of one round result. Slices alias
// decoder-owned scratch reused across DecodeResultItem calls; copy them
// to retain past the next decode.
type Result struct {
	Round     int
	Outcome   []int
	Costs     []float64
	Fouls     []Foul
	Convicted []int
	Excluded  []int
	Pulse     int
}

// AppendResultsHeader starts a MsgResults reply. The caller then appends
// zero or more results with AppendResult and terminates the stream with
// FinishResults — results encode as plays complete, with no intermediate
// collection and no up-front count.
func AppendResultsHeader(dst []byte, reqID, ref uint64) []byte {
	dst = append(dst, MsgResults)
	dst = AppendUvarint(dst, reqID)
	return AppendUvarint(dst, ref)
}

// AppendResult appends one round result to an open MsgResults stream.
func AppendResult(dst []byte, res *core.RoundResult) []byte {
	dst = append(dst, 1) // item marker: a result follows
	var flags byte
	if len(res.Verdict.Fouls) > 0 {
		flags |= resFouls
	}
	if len(res.Convicted) > 0 {
		flags |= resConvicted
	}
	if len(res.Excluded) > 0 {
		flags |= resExcluded
	}
	if len(res.Costs) > 0 {
		flags |= resCosts
	}
	if res.Pulse != 0 {
		flags |= resPulse
	}
	dst = append(dst, flags)
	dst = appendInt(dst, res.Round)
	dst = appendInts(dst, res.Outcome)
	if flags&resFouls != 0 {
		dst = AppendUvarint(dst, uint64(len(res.Verdict.Fouls)))
		for _, f := range res.Verdict.Fouls {
			dst = appendInt(dst, f.Agent)
			dst = append(dst, byte(f.Reason))
			dst = appendString(dst, f.Detail)
		}
	}
	if flags&resConvicted != 0 {
		dst = appendInts(dst, res.Convicted)
	}
	if flags&resExcluded != 0 {
		dst = appendInts(dst, res.Excluded)
	}
	if flags&resCosts != 0 {
		dst = appendFloats(dst, res.Costs)
	}
	if flags&resPulse != 0 {
		dst = appendInt(dst, res.Pulse)
	}
	return dst
}

// FinishResults terminates a MsgResults stream. code is CodeOK when every
// requested round completed; otherwise it explains why the batch stopped
// early (results before the error are still valid). deduped counts how
// many of the streamed results were replayed from already-completed
// rounds rather than played fresh (see Play.Expect).
func FinishResults(dst []byte, code uint64, detail string, deduped uint64) []byte {
	dst = append(dst, 0) // item marker: end of stream
	dst = AppendUvarint(dst, code)
	dst = appendString(dst, detail)
	return AppendUvarint(dst, deduped)
}

// ResultsHeader is the fixed prefix of a MsgResults reply.
type ResultsHeader struct{ ReqID, Ref uint64 }

// DecodeResultsHeader decodes the MsgResults prefix (after the type
// byte). The caller then loops DecodeResultItem until it reports no more
// items, and finishes with DecodeResultsTrailer.
func DecodeResultsHeader(d *Decoder) (ResultsHeader, error) {
	h := ResultsHeader{ReqID: d.Uvarint(), Ref: d.Uvarint()}
	return h, d.Err()
}

// DecodeResultItem decodes the next stream item into out, reusing out's
// slice capacity. It returns false when the stream terminator was
// consumed instead of a result.
func DecodeResultItem(d *Decoder, out *Result) (bool, error) {
	marker := d.Byte()
	if d.Err() != nil {
		return false, d.Err()
	}
	if marker == 0 {
		return false, nil
	}
	if marker != 1 {
		d.fail()
		return false, d.Err()
	}
	flags := d.Byte()
	out.Round = d.Int()
	out.Outcome = d.Ints(out.Outcome)
	out.Fouls = out.Fouls[:0]
	if flags&resFouls != 0 {
		n := d.Uvarint()
		if d.Err() == nil && n > uint64(d.Len()) {
			d.fail()
		}
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			out.Fouls = append(out.Fouls, Foul{
				Agent:  d.Int(),
				Reason: d.Byte(),
				Detail: d.String(),
			})
		}
	}
	out.Convicted = out.Convicted[:0]
	if flags&resConvicted != 0 {
		out.Convicted = d.Ints(out.Convicted)
	}
	out.Excluded = out.Excluded[:0]
	if flags&resExcluded != 0 {
		out.Excluded = d.Ints(out.Excluded)
	}
	out.Costs = out.Costs[:0]
	if flags&resCosts != 0 {
		out.Costs = d.Floats(out.Costs)
	}
	out.Pulse = 0
	if flags&resPulse != 0 {
		out.Pulse = d.Int()
	}
	return d.Err() == nil, d.Err()
}

// ResultsTrailer is the end-of-stream status of a MsgResults reply.
type ResultsTrailer struct {
	Code    uint64
	Detail  string
	Deduped uint64
}

// DecodeResultsTrailer decodes the stream terminator's status (after
// DecodeResultItem returned false).
func DecodeResultsTrailer(d *Decoder) (ResultsTrailer, error) {
	t := ResultsTrailer{Code: d.Uvarint(), Detail: d.String()}
	t.Deduped = d.Uvarint()
	return t, d.Err()
}

// ---------------------------------------------------------------------------
// Session stats.

// Stats is the wire form of core.SessionStats.
type Stats struct {
	Kind           uint8
	Players        int
	Rounds         int
	Fouls          int
	Convictions    int
	CumulativeCost []float64
	Excluded       []int // indices of currently excluded agents
	MaxLoad        uint64
	Pulses         uint64
	Messages       uint64
	Commitments    uint64
	Reveals        uint64
	Agreements     uint64
}

// AppendStatsReply encodes a MsgStatsReply from driver stats.
func AppendStatsReply(dst []byte, reqID uint64, st *core.SessionStats) []byte {
	dst = append(dst, MsgStatsReply)
	dst = AppendUvarint(dst, reqID)
	dst = append(dst, byte(st.Kind))
	dst = appendInt(dst, st.Players)
	dst = appendInt(dst, st.Rounds)
	dst = appendInt(dst, st.Fouls)
	dst = appendInt(dst, st.Convictions)
	dst = appendFloats(dst, st.CumulativeCost)
	n := 0
	for _, x := range st.Excluded {
		if x {
			n++
		}
	}
	dst = AppendUvarint(dst, uint64(n))
	for i, x := range st.Excluded {
		if x {
			dst = appendInt(dst, i)
		}
	}
	dst = AppendUvarint(dst, uint64(max(st.MaxLoad, 0)))
	dst = AppendUvarint(dst, uint64(max(st.Pulses, 0)))
	dst = AppendUvarint(dst, uint64(max(st.Messages, 0)))
	dst = AppendUvarint(dst, uint64(max(st.Protocol.Commitments, 0)))
	dst = AppendUvarint(dst, uint64(max(st.Protocol.Reveals, 0)))
	return AppendUvarint(dst, uint64(max(st.Protocol.Agreements, 0)))
}

// DecodeStatsReply decodes a MsgStatsReply body.
func DecodeStatsReply(d *Decoder) (uint64, Stats, error) {
	reqID := d.Uvarint()
	st := Stats{
		Kind:           d.Byte(),
		Players:        d.Int(),
		Rounds:         d.Int(),
		Fouls:          d.Int(),
		Convictions:    d.Int(),
		CumulativeCost: d.Floats(nil),
		Excluded:       d.Ints(nil),
		MaxLoad:        d.Uvarint(),
		Pulses:         d.Uvarint(),
		Messages:       d.Uvarint(),
		Commitments:    d.Uvarint(),
		Reveals:        d.Uvarint(),
		Agreements:     d.Uvarint(),
	}
	return reqID, st, d.Err()
}
