// Package audit implements the judicial service's evidence checking (paper
// §3.2, §5): verifying that revealed actions match commitments, that actions
// are legitimate (within Πi), that pure actions are best responses to the
// previous outcome, and — for mixed strategies — that "random" choices
// really follow the committed pseudo-random stream (§5.3's Blum-style
// solution). Two auditing disciplines are provided:
//
//   - PerRound: every play carries its own commitment and is audited
//     immediately (the paper's base design, §3.3).
//   - Batched: agents commit once per epoch to a PRG seed; all actions in
//     the epoch are derived from it and audited together when the seed is
//     revealed (the §5.3 efficiency extension). The E-AUD experiment
//     compares their overheads.
package audit
