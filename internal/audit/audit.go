package audit

import (
	"errors"
	"fmt"
	"strconv"

	"gameauthority/internal/commit"
	"gameauthority/internal/game"
	"gameauthority/internal/prng"
)

// Reason classifies a foul play.
type Reason int

// Foul-play reasons, in increasing order of severity.
const (
	// ReasonIllegitimateAction: the action is outside the agent's action
	// set Πi (§3.2 requirement 1).
	ReasonIllegitimateAction Reason = iota + 1
	// ReasonCommitMismatch: the reveal does not open the agreed
	// commitment (§3.2 requirement 2 enforcement).
	ReasonCommitMismatch
	// ReasonMissingReveal: the agent never revealed its committed action.
	ReasonMissingReveal
	// ReasonNotBestResponse: a pure-strategy action that is not a best
	// response to the previous outcome (§3.2 requirement 3).
	ReasonNotBestResponse
	// ReasonSeedMismatch: the action does not match the committed
	// pseudo-random stream for the declared mixed strategy (§5.3).
	ReasonSeedMismatch
	// ReasonSuspiciousDistribution: empirical action frequencies deviate
	// from the declared mixed strategy beyond the configured threshold
	// (§5.2's detection problem, used when no seeds are available).
	ReasonSuspiciousDistribution
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case ReasonIllegitimateAction:
		return "illegitimate-action"
	case ReasonCommitMismatch:
		return "commit-mismatch"
	case ReasonMissingReveal:
		return "missing-reveal"
	case ReasonNotBestResponse:
		return "not-best-response"
	case ReasonSeedMismatch:
		return "seed-mismatch"
	case ReasonSuspiciousDistribution:
		return "suspicious-distribution"
	default:
		return "reason(" + strconv.Itoa(int(r)) + ")"
	}
}

// Severity maps a reason to a punishment weight in [0, 1]; protocol
// violations (lies) are maximal, strategic deviations lighter.
func (r Reason) Severity() float64 {
	switch r {
	case ReasonCommitMismatch, ReasonMissingReveal, ReasonSeedMismatch:
		return 1.0
	case ReasonIllegitimateAction:
		return 1.0
	case ReasonNotBestResponse:
		return 0.5
	case ReasonSuspiciousDistribution:
		return 0.25
	default:
		return 0
	}
}

// Foul is one detected violation.
type Foul struct {
	Agent  int
	Reason Reason
	Detail string
}

// Verdict is the judicial service's output for one audited play (or epoch).
type Verdict struct {
	Fouls []Foul
}

// Guilty returns the distinct agent ids with at least one foul, in
// ascending order.
func (v Verdict) Guilty() []int {
	if len(v.Fouls) == 0 {
		return nil // fast path: honest plays must not allocate
	}
	seen := make(map[int]bool)
	var out []int
	for _, f := range v.Fouls {
		if !seen[f.Agent] {
			seen[f.Agent] = true
			out = append(out, f.Agent)
		}
	}
	// Insertion order is by fouls; sort ascending for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// FoulsFor returns the fouls charged to the given agent, in issue order.
func (v Verdict) FoulsFor(agent int) []Foul {
	var out []Foul
	for _, f := range v.Fouls {
		if f.Agent == agent {
			out = append(out, f)
		}
	}
	return out
}

// TotalSeverity sums the punishment weight (Reason.Severity) of the
// agent's fouls in this verdict — the sanction the executive service
// applies when it adopts the verdict verbatim.
func (v Verdict) TotalSeverity(agent int) float64 {
	var total float64
	for _, f := range v.Fouls {
		if f.Agent == agent {
			total += f.Reason.Severity()
		}
	}
	return total
}

// ErrBadEvidence reports malformed evidence passed to an auditor.
var ErrBadEvidence = errors.New("audit: malformed evidence")

// EncodeAction canonically serializes an action for commitment.
func EncodeAction(action int) []byte {
	return strconv.AppendInt(nil, int64(action), 10)
}

// AppendAction appends EncodeAction's serialization to dst, reusing its
// capacity — the allocation-free path for per-session scratch buffers.
func AppendAction(dst []byte, action int) []byte {
	return strconv.AppendInt(dst, int64(action), 10)
}

// DecodeAction parses EncodeAction's output. It parses the bytes directly
// (no string conversion) so honest-path audits do not allocate.
func DecodeAction(data []byte) (int, error) {
	neg := false
	i := 0
	if len(data) > 0 && (data[0] == '-' || data[0] == '+') {
		neg = data[0] == '-'
		i = 1
	}
	if i == len(data) {
		return 0, fmt.Errorf("%w: empty action encoding", ErrBadEvidence)
	}
	n := 0
	for ; i < len(data); i++ {
		c := data[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("%w: bad action byte %q", ErrBadEvidence, c)
		}
		if n > (1<<31)/10 { // reject absurd encodings before they overflow
			return 0, fmt.Errorf("%w: action encoding overflows", ErrBadEvidence)
		}
		n = n*10 + int(c-'0')
	}
	if neg {
		n = -n
	}
	return n, nil
}

// PlayEvidence is the per-round evidence the executive service hands the
// judicial service after the reveal phase (all fields Byzantine-agreed).
type PlayEvidence struct {
	// Round index of the play.
	Round int
	// PrevOutcome is the agreed outcome of the previous play; nil for the
	// first play (no best-response requirement then).
	PrevOutcome game.Profile
	// Commitments[i] is agent i's agreed commitment digest.
	Commitments []commit.Digest
	// Openings[i] is agent i's reveal; Revealed[i] false means silence.
	Openings []commit.Opening
	Revealed []bool
}

// PerRound audits a single play of the elected game g (pure strategies,
// §3.3): commitment match, legitimacy, and best response to PrevOutcome.
// It returns the verdict and the decoded action profile (with -1 for agents
// whose action could not be established).
func PerRound(g game.Game, ev PlayEvidence) (Verdict, game.Profile, error) {
	var verdict Verdict
	actions := make(game.Profile, g.NumPlayers())
	if err := PerRoundInto(g, ev, actions, &verdict); err != nil {
		return verdict, nil, err
	}
	return verdict, actions, nil
}

// PerRoundInto is PerRound with caller-owned buffers for the play hot path:
// the decoded profile is written into actions (length NumPlayers) and fouls
// are appended to verdict.Fouls (reset it before the call). Honest plays
// complete without allocating.
func PerRoundInto(g game.Game, ev PlayEvidence, actions game.Profile, verdict *Verdict) error {
	n := g.NumPlayers()
	if len(ev.Commitments) != n || len(ev.Openings) != n || len(ev.Revealed) != n {
		return fmt.Errorf("%w: evidence arity mismatch", ErrBadEvidence)
	}
	if len(actions) != n {
		return fmt.Errorf("%w: action buffer arity %d, want %d", ErrBadEvidence, len(actions), n)
	}
	for i := range actions {
		actions[i] = -1
	}
	for i := 0; i < n; i++ {
		if !ev.Revealed[i] {
			verdict.Fouls = append(verdict.Fouls, Foul{Agent: i, Reason: ReasonMissingReveal,
				Detail: fmt.Sprintf("round %d: no reveal", ev.Round)})
			continue
		}
		if err := commit.Verify(ev.Commitments[i], ev.Openings[i]); err != nil {
			verdict.Fouls = append(verdict.Fouls, Foul{Agent: i, Reason: ReasonCommitMismatch,
				Detail: fmt.Sprintf("round %d: %v", ev.Round, err)})
			continue
		}
		a, err := DecodeAction(ev.Openings[i].Value)
		if err != nil {
			verdict.Fouls = append(verdict.Fouls, Foul{Agent: i, Reason: ReasonCommitMismatch,
				Detail: fmt.Sprintf("round %d: undecodable action", ev.Round)})
			continue
		}
		if a < 0 || a >= g.NumActions(i) {
			verdict.Fouls = append(verdict.Fouls, Foul{Agent: i, Reason: ReasonIllegitimateAction,
				Detail: fmt.Sprintf("round %d: action %d outside Π(%d)", ev.Round, a, i)})
			continue
		}
		actions[i] = a
	}
	// Best-response audit needs the previous outcome (§3.2: "Action πi of
	// agent i is foul if πi is not i's best response to π−i, where
	// (π′i, π−i) is the PSP of the previous play").
	if ev.PrevOutcome != nil {
		if err := game.ValidateProfile(g, ev.PrevOutcome); err != nil {
			return fmt.Errorf("%w: bad previous outcome: %v", ErrBadEvidence, err)
		}
		for i := 0; i < n; i++ {
			if actions[i] < 0 {
				continue // already fouled above
			}
			if !game.IsBestResponse(g, i, actions[i], ev.PrevOutcome) {
				verdict.Fouls = append(verdict.Fouls, Foul{Agent: i, Reason: ReasonNotBestResponse,
					Detail: fmt.Sprintf("round %d: action %d is not a best response", ev.Round, actions[i])})
			}
		}
	}
	return nil
}

// --- Mixed strategies (§5) -------------------------------------------------

// MixedEvidence extends per-round evidence for mixed-strategy audits: each
// agent's declared equilibrium strategy and the per-round seed opening.
type MixedEvidence struct {
	Round int
	// Strategies[i] is the mixed strategy agent i is expected to sample
	// (the equilibrium of the elected game — common knowledge).
	Strategies []game.Mixed
	// SeedCommitments[i], SeedOpenings[i]: Blum commit/reveal of the
	// 8-byte big-endian seed used for this round's private choice.
	SeedCommitments []commit.Digest
	SeedOpenings    []commit.Opening
	Revealed        []bool
	// Actions[i] is the action agent i actually played (published by the
	// executive service).
	Actions game.Profile
}

// EncodeSeed canonically serializes a PRG seed for commitment.
func EncodeSeed(seed uint64) []byte {
	return strconv.AppendUint(nil, seed, 16)
}

// AppendSeed appends EncodeSeed's serialization to dst, reusing its
// capacity — the allocation-free path for per-session scratch buffers.
func AppendSeed(dst []byte, seed uint64) []byte {
	return strconv.AppendUint(dst, seed, 16)
}

// DecodeSeed parses EncodeSeed's output. Like DecodeAction it parses the
// bytes directly so honest-path audits do not allocate.
func DecodeSeed(data []byte) (uint64, error) {
	if len(data) == 0 || len(data) > 16 {
		return 0, fmt.Errorf("%w: seed encoding length %d", ErrBadEvidence, len(data))
	}
	var s uint64
	for _, c := range data {
		var d uint64
		switch {
		case '0' <= c && c <= '9':
			d = uint64(c - '0')
		case 'a' <= c && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, fmt.Errorf("%w: bad seed byte %q", ErrBadEvidence, c)
		}
		s = s<<4 | d
	}
	return s, nil
}

// ExpectedAction reproduces the action an honest agent must play in the
// given round from its seed and declared strategy: one Categorical draw on
// the stream Derive(seed, agent, round). This is the exactness §5.3 buys.
func ExpectedAction(strategy game.Mixed, seed uint64, agent, round int) (int, error) {
	sampler, err := strategy.Sampler()
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadEvidence, err)
	}
	src := prng.Derive(seed, uint64(agent), uint64(round))
	return sampler.Sample(src), nil
}

// MixedPerRound audits one play under mixed strategies: seed commitment
// must open, and the played action must equal the PRG-derived sample of the
// declared strategy.
func MixedPerRound(g game.Game, ev MixedEvidence) (Verdict, error) {
	n := g.NumPlayers()
	if len(ev.Strategies) != n || len(ev.SeedCommitments) != n ||
		len(ev.SeedOpenings) != n || len(ev.Revealed) != n || len(ev.Actions) != n {
		return Verdict{}, fmt.Errorf("%w: evidence arity mismatch", ErrBadEvidence)
	}
	var verdict Verdict
	for i := 0; i < n; i++ {
		a := ev.Actions[i]
		if a < 0 || a >= g.NumActions(i) {
			verdict.Fouls = append(verdict.Fouls, Foul{Agent: i, Reason: ReasonIllegitimateAction,
				Detail: fmt.Sprintf("round %d: action %d outside Π(%d)", ev.Round, a, i)})
			continue
		}
		if !ev.Revealed[i] {
			verdict.Fouls = append(verdict.Fouls, Foul{Agent: i, Reason: ReasonMissingReveal,
				Detail: fmt.Sprintf("round %d: seed not revealed", ev.Round)})
			continue
		}
		if err := commit.Verify(ev.SeedCommitments[i], ev.SeedOpenings[i]); err != nil {
			verdict.Fouls = append(verdict.Fouls, Foul{Agent: i, Reason: ReasonCommitMismatch,
				Detail: fmt.Sprintf("round %d: seed commitment: %v", ev.Round, err)})
			continue
		}
		seed, err := DecodeSeed(ev.SeedOpenings[i].Value)
		if err != nil {
			verdict.Fouls = append(verdict.Fouls, Foul{Agent: i, Reason: ReasonCommitMismatch,
				Detail: fmt.Sprintf("round %d: undecodable seed", ev.Round)})
			continue
		}
		want, err := ExpectedAction(ev.Strategies[i], seed, i, ev.Round)
		if err != nil {
			verdict.Fouls = append(verdict.Fouls, Foul{Agent: i, Reason: ReasonSeedMismatch,
				Detail: fmt.Sprintf("round %d: strategy unusable: %v", ev.Round, err)})
			continue
		}
		if a != want {
			verdict.Fouls = append(verdict.Fouls, Foul{Agent: i, Reason: ReasonSeedMismatch,
				Detail: fmt.Sprintf("round %d: played %d, PRG stream requires %d", ev.Round, a, want)})
		}
	}
	return verdict, nil
}

// --- Batched (epoch) auditing, §5.3 extension -------------------------------

// EpochEvidence is the evidence for a T-round epoch under seed-commit
// auditing: one seed commitment per agent for the whole epoch, the action
// history, and the per-round strategies (which evolve with the outcomes).
type EpochEvidence struct {
	// StartRound is the first round of the epoch.
	StartRound int
	// Strategies[r][i] is agent i's expected strategy in epoch round r.
	Strategies [][]game.Mixed
	// History[r][i] is the action agent i played in epoch round r.
	History []game.Profile
	// SeedCommitments/SeedOpenings as in MixedEvidence, one per agent for
	// the entire epoch.
	SeedCommitments []commit.Digest
	SeedOpenings    []commit.Opening
	Revealed        []bool
}

// Batched audits an entire epoch at once. Cost model (reported by the
// E-AUD experiment): one commitment + one reveal + one agreement per agent
// per epoch, instead of per round.
func Batched(g game.Game, ev EpochEvidence) (Verdict, error) {
	n := g.NumPlayers()
	rounds := len(ev.History)
	if len(ev.Strategies) != rounds || len(ev.SeedCommitments) != n ||
		len(ev.SeedOpenings) != n || len(ev.Revealed) != n {
		return Verdict{}, fmt.Errorf("%w: evidence arity mismatch", ErrBadEvidence)
	}
	var verdict Verdict
	seeds := make([]uint64, n)
	valid := make([]bool, n)
	for i := 0; i < n; i++ {
		if !ev.Revealed[i] {
			verdict.Fouls = append(verdict.Fouls, Foul{Agent: i, Reason: ReasonMissingReveal,
				Detail: fmt.Sprintf("epoch@%d: seed not revealed", ev.StartRound)})
			continue
		}
		if err := commit.Verify(ev.SeedCommitments[i], ev.SeedOpenings[i]); err != nil {
			verdict.Fouls = append(verdict.Fouls, Foul{Agent: i, Reason: ReasonCommitMismatch,
				Detail: fmt.Sprintf("epoch@%d: %v", ev.StartRound, err)})
			continue
		}
		s, err := DecodeSeed(ev.SeedOpenings[i].Value)
		if err != nil {
			verdict.Fouls = append(verdict.Fouls, Foul{Agent: i, Reason: ReasonCommitMismatch,
				Detail: fmt.Sprintf("epoch@%d: undecodable seed", ev.StartRound)})
			continue
		}
		seeds[i], valid[i] = s, true
	}
	for r := 0; r < rounds; r++ {
		if len(ev.History[r]) != n || len(ev.Strategies[r]) != n {
			return verdict, fmt.Errorf("%w: round %d arity mismatch", ErrBadEvidence, r)
		}
		round := ev.StartRound + r
		for i := 0; i < n; i++ {
			if !valid[i] {
				continue
			}
			a := ev.History[r][i]
			if a < 0 || a >= g.NumActions(i) {
				verdict.Fouls = append(verdict.Fouls, Foul{Agent: i, Reason: ReasonIllegitimateAction,
					Detail: fmt.Sprintf("round %d: action %d outside Π(%d)", round, a, i)})
				continue
			}
			want, err := ExpectedAction(ev.Strategies[r][i], seeds[i], i, round)
			if err != nil {
				verdict.Fouls = append(verdict.Fouls, Foul{Agent: i, Reason: ReasonSeedMismatch,
					Detail: fmt.Sprintf("round %d: strategy unusable: %v", round, err)})
				continue
			}
			if a != want {
				verdict.Fouls = append(verdict.Fouls, Foul{Agent: i, Reason: ReasonSeedMismatch,
					Detail: fmt.Sprintf("round %d: played %d, PRG stream requires %d", round, a, want)})
			}
		}
	}
	return verdict, nil
}

// --- Statistical screening (§5.2) -------------------------------------------

// FrequencyCheck computes a chi-square-style deviation statistic between an
// agent's observed action counts and its declared mixed strategy, flagging
// distributions whose statistic exceeds threshold. It is the screening tool
// for §5.2's "challenge ... verifying that a sequence of random choices
// follows a distribution" when seed commitments are unavailable; unlike the
// seed audit it is probabilistic, so it reports a score, not proof.
func FrequencyCheck(strategy game.Mixed, actions []int, threshold float64) (statistic float64, suspicious bool, err error) {
	k := len(strategy)
	if k == 0 {
		return 0, false, fmt.Errorf("%w: empty strategy", ErrBadEvidence)
	}
	counts := make([]float64, k)
	for _, a := range actions {
		if a < 0 || a >= k {
			return 0, false, fmt.Errorf("%w: action %d out of range", ErrBadEvidence, a)
		}
		counts[a]++
	}
	total := float64(len(actions))
	if total == 0 {
		return 0, false, nil
	}
	for a := 0; a < k; a++ {
		expected := strategy[a] * total
		if expected < 1e-12 {
			if counts[a] > 0 {
				// Played an action declared to have probability 0:
				// infinitely suspicious; report a huge statistic.
				return 1e18, true, nil
			}
			continue
		}
		d := counts[a] - expected
		statistic += d * d / expected
	}
	return statistic, statistic > threshold, nil
}
