package audit

import (
	"errors"
	"testing"
	"testing/quick"

	"gameauthority/internal/commit"
	"gameauthority/internal/game"
	"gameauthority/internal/prng"
)

func TestReasonStringsAndSeverity(t *testing.T) {
	reasons := []Reason{
		ReasonIllegitimateAction, ReasonCommitMismatch, ReasonMissingReveal,
		ReasonNotBestResponse, ReasonSeedMismatch, ReasonSuspiciousDistribution,
	}
	for _, r := range reasons {
		if r.String() == "" {
			t.Fatalf("reason %d has empty name", r)
		}
		if s := r.Severity(); s <= 0 || s > 1 {
			t.Fatalf("reason %v severity %v outside (0,1]", r, s)
		}
	}
	if Reason(0).Severity() != 0 {
		t.Fatal("unknown reason should have zero severity")
	}
}

func TestActionEncodeDecode(t *testing.T) {
	for _, a := range []int{0, 1, 7, 123} {
		got, err := DecodeAction(EncodeAction(a))
		if err != nil || got != a {
			t.Fatalf("round trip %d: got %d, %v", a, got, err)
		}
	}
	if _, err := DecodeAction([]byte("xyz")); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("garbage decode: %v", err)
	}
}

// buildEvidence commits the given actions honestly and returns evidence.
func buildEvidence(t *testing.T, g game.Game, round int, prev game.Profile, actions []int, seed uint64) PlayEvidence {
	t.Helper()
	n := g.NumPlayers()
	src := prng.New(seed)
	ev := PlayEvidence{
		Round:       round,
		PrevOutcome: prev,
		Commitments: make([]commit.Digest, n),
		Openings:    make([]commit.Opening, n),
		Revealed:    make([]bool, n),
	}
	for i, a := range actions {
		d, op := commit.Commit(src, EncodeAction(a))
		ev.Commitments[i] = d
		ev.Openings[i] = op
		ev.Revealed[i] = true
	}
	return ev
}

func TestPerRoundCleanPlay(t *testing.T) {
	g := game.MatchingPennies()
	// Previous outcome (Heads, Heads): A's BR is Heads(0), B's BR is
	// Tails(1).
	ev := buildEvidence(t, g, 1, game.Profile{0, 0}, []int{0, 1}, 1)
	verdict, actions, err := PerRound(g, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdict.Fouls) != 0 {
		t.Fatalf("clean play produced fouls: %+v", verdict.Fouls)
	}
	if !actions.Equal(game.Profile{0, 1}) {
		t.Fatalf("decoded actions = %v", actions)
	}
}

func TestPerRoundFirstPlaySkipsBestResponse(t *testing.T) {
	g := game.MatchingPennies()
	// No previous outcome: any legitimate action passes.
	ev := buildEvidence(t, g, 0, nil, []int{1, 0}, 2)
	verdict, _, err := PerRound(g, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdict.Fouls) != 0 {
		t.Fatalf("first play fouls: %+v", verdict.Fouls)
	}
}

func TestPerRoundDetectsNotBestResponse(t *testing.T) {
	g := game.MatchingPennies()
	// Against prev (Heads, Heads), B playing Heads(0) is a foul.
	ev := buildEvidence(t, g, 2, game.Profile{0, 0}, []int{0, 0}, 3)
	verdict, _, err := PerRound(g, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdict.Fouls) != 1 || verdict.Fouls[0].Agent != 1 ||
		verdict.Fouls[0].Reason != ReasonNotBestResponse {
		t.Fatalf("verdict = %+v, want B not-best-response", verdict.Fouls)
	}
}

func TestPerRoundDetectsIllegitimateAction(t *testing.T) {
	// The Fig. 1 scenario as the authority sees it: the elected game is
	// plain matching pennies (2 actions for B); B plays action 2
	// ("Manipulate"), which is simply outside Π_B.
	g := game.MatchingPennies()
	ev := buildEvidence(t, g, 1, nil, []int{0, game.ManipulateAction}, 4)
	verdict, actions, err := PerRound(g, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdict.Fouls) != 1 || verdict.Fouls[0].Agent != 1 ||
		verdict.Fouls[0].Reason != ReasonIllegitimateAction {
		t.Fatalf("verdict = %+v, want illegitimate-action by B", verdict.Fouls)
	}
	if actions[1] != -1 {
		t.Fatalf("illegitimate action leaked into profile: %v", actions)
	}
}

func TestPerRoundDetectsCommitMismatch(t *testing.T) {
	g := game.MatchingPennies()
	ev := buildEvidence(t, g, 1, nil, []int{0, 1}, 5)
	// B alters its reveal after committing.
	ev.Openings[1].Value = EncodeAction(0)
	verdict, _, err := PerRound(g, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdict.Fouls) != 1 || verdict.Fouls[0].Reason != ReasonCommitMismatch {
		t.Fatalf("verdict = %+v, want commit-mismatch", verdict.Fouls)
	}
}

func TestPerRoundDetectsMissingReveal(t *testing.T) {
	g := game.MatchingPennies()
	ev := buildEvidence(t, g, 1, nil, []int{0, 1}, 6)
	ev.Revealed[0] = false
	verdict, _, err := PerRound(g, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdict.Fouls) != 1 || verdict.Fouls[0].Agent != 0 ||
		verdict.Fouls[0].Reason != ReasonMissingReveal {
		t.Fatalf("verdict = %+v, want missing-reveal by A", verdict.Fouls)
	}
}

func TestPerRoundUndecodableAction(t *testing.T) {
	g := game.MatchingPennies()
	src := prng.New(7)
	n := g.NumPlayers()
	ev := PlayEvidence{
		Commitments: make([]commit.Digest, n),
		Openings:    make([]commit.Opening, n),
		Revealed:    []bool{true, true},
	}
	d0, op0 := commit.Commit(src, EncodeAction(0))
	dBad, opBad := commit.Commit(src, []byte("not-a-number"))
	ev.Commitments[0], ev.Openings[0] = d0, op0
	ev.Commitments[1], ev.Openings[1] = dBad, opBad
	verdict, _, err := PerRound(g, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdict.Fouls) != 1 || verdict.Fouls[0].Reason != ReasonCommitMismatch {
		t.Fatalf("verdict = %+v", verdict.Fouls)
	}
}

func TestPerRoundEvidenceShapeErrors(t *testing.T) {
	g := game.MatchingPennies()
	if _, _, err := PerRound(g, PlayEvidence{}); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("empty evidence: %v", err)
	}
	ev := buildEvidence(t, g, 1, game.Profile{0, 0, 0}, []int{0, 1}, 8)
	if _, _, err := PerRound(g, ev); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("bad prev outcome: %v", err)
	}
}

func TestVerdictGuiltySortedUnique(t *testing.T) {
	v := Verdict{Fouls: []Foul{{Agent: 3}, {Agent: 1}, {Agent: 3}, {Agent: 0}}}
	g := v.Guilty()
	want := []int{0, 1, 3}
	if len(g) != len(want) {
		t.Fatalf("guilty = %v", g)
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("guilty = %v, want %v", g, want)
		}
	}
}

// --- Mixed-strategy audits ---------------------------------------------------

func TestSeedEncodeDecode(t *testing.T) {
	for _, s := range []uint64{0, 1, 1 << 63, 0xdeadbeef} {
		got, err := DecodeSeed(EncodeSeed(s))
		if err != nil || got != s {
			t.Fatalf("seed round trip %d: %d, %v", s, got, err)
		}
	}
	if _, err := DecodeSeed([]byte("zz!")); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("garbage seed: %v", err)
	}
}

func buildMixedEvidence(t *testing.T, g game.Game, round int, seeds []uint64, honest []bool, seedCommit uint64) MixedEvidence {
	t.Helper()
	n := g.NumPlayers()
	src := prng.New(seedCommit)
	ev := MixedEvidence{
		Round:           round,
		Strategies:      make([]game.Mixed, n),
		SeedCommitments: make([]commit.Digest, n),
		SeedOpenings:    make([]commit.Opening, n),
		Revealed:        make([]bool, n),
		Actions:         make(game.Profile, n),
	}
	for i := 0; i < n; i++ {
		ev.Strategies[i] = game.Uniform(g.NumActions(i))
		d, op := commit.Commit(src, EncodeSeed(seeds[i]))
		ev.SeedCommitments[i] = d
		ev.SeedOpenings[i] = op
		ev.Revealed[i] = true
		want, err := ExpectedAction(ev.Strategies[i], seeds[i], i, round)
		if err != nil {
			t.Fatal(err)
		}
		if honest[i] {
			ev.Actions[i] = want
		} else {
			// Play something other than the PRG draw.
			ev.Actions[i] = (want + 1) % g.NumActions(i)
		}
	}
	return ev
}

func TestMixedPerRoundHonest(t *testing.T) {
	g := game.MatchingPennies()
	ev := buildMixedEvidence(t, g, 3, []uint64{11, 22}, []bool{true, true}, 9)
	verdict, err := MixedPerRound(g, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdict.Fouls) != 0 {
		t.Fatalf("honest mixed play fouled: %+v", verdict.Fouls)
	}
}

func TestMixedPerRoundDetectsOffStreamAction(t *testing.T) {
	// §5.1's hidden manipulation in mixed form: B ignores its committed
	// stream and plays what it likes. Seed audit catches it exactly.
	g := game.MatchingPennies()
	ev := buildMixedEvidence(t, g, 3, []uint64{11, 22}, []bool{true, false}, 10)
	verdict, err := MixedPerRound(g, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdict.Fouls) != 1 || verdict.Fouls[0].Agent != 1 ||
		verdict.Fouls[0].Reason != ReasonSeedMismatch {
		t.Fatalf("verdict = %+v, want seed-mismatch by B", verdict.Fouls)
	}
}

func TestMixedPerRoundSeedCommitMismatch(t *testing.T) {
	g := game.MatchingPennies()
	ev := buildMixedEvidence(t, g, 1, []uint64{1, 2}, []bool{true, true}, 11)
	ev.SeedOpenings[0].Value = EncodeSeed(999) // lie about the seed
	verdict, err := MixedPerRound(g, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdict.Fouls) != 1 || verdict.Fouls[0].Reason != ReasonCommitMismatch {
		t.Fatalf("verdict = %+v", verdict.Fouls)
	}
}

func TestMixedPerRoundArityError(t *testing.T) {
	if _, err := MixedPerRound(game.MatchingPennies(), MixedEvidence{}); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("empty evidence: %v", err)
	}
}

// --- Batched audits ------------------------------------------------------------

func TestBatchedEpochHonest(t *testing.T) {
	g := game.MatchingPennies()
	n := g.NumPlayers()
	const rounds = 8
	seeds := []uint64{5, 6}
	src := prng.New(12)
	ev := EpochEvidence{
		StartRound:      10,
		Strategies:      make([][]game.Mixed, rounds),
		History:         make([]game.Profile, rounds),
		SeedCommitments: make([]commit.Digest, n),
		SeedOpenings:    make([]commit.Opening, n),
		Revealed:        make([]bool, n),
	}
	for i := 0; i < n; i++ {
		d, op := commit.Commit(src, EncodeSeed(seeds[i]))
		ev.SeedCommitments[i], ev.SeedOpenings[i], ev.Revealed[i] = d, op, true
	}
	for r := 0; r < rounds; r++ {
		ev.Strategies[r] = []game.Mixed{game.Uniform(2), game.Uniform(2)}
		ev.History[r] = make(game.Profile, n)
		for i := 0; i < n; i++ {
			a, err := ExpectedAction(ev.Strategies[r][i], seeds[i], i, 10+r)
			if err != nil {
				t.Fatal(err)
			}
			ev.History[r][i] = a
		}
	}
	verdict, err := Batched(g, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdict.Fouls) != 0 {
		t.Fatalf("honest epoch fouled: %+v", verdict.Fouls)
	}
	// Now corrupt one mid-epoch action; exactly one foul must appear.
	ev.History[4][1] = (ev.History[4][1] + 1) % 2
	verdict, err = Batched(g, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdict.Fouls) != 1 || verdict.Fouls[0].Agent != 1 ||
		verdict.Fouls[0].Reason != ReasonSeedMismatch {
		t.Fatalf("tampered epoch verdict = %+v", verdict.Fouls)
	}
}

func TestBatchedMissingSeedReveal(t *testing.T) {
	g := game.MatchingPennies()
	ev := EpochEvidence{
		Strategies:      [][]game.Mixed{},
		History:         []game.Profile{},
		SeedCommitments: make([]commit.Digest, 2),
		SeedOpenings:    make([]commit.Opening, 2),
		Revealed:        []bool{true, false},
	}
	src := prng.New(13)
	d, op := commit.Commit(src, EncodeSeed(1))
	ev.SeedCommitments[0], ev.SeedOpenings[0] = d, op
	verdict, err := Batched(g, ev)
	if err != nil {
		t.Fatal(err)
	}
	foundMismatch := false
	for _, f := range verdict.Fouls {
		if f.Agent == 1 && f.Reason == ReasonMissingReveal {
			foundMismatch = true
		}
		if f.Agent == 0 && f.Reason != ReasonCommitMismatch {
			// agent 0's empty-digest commitment will mismatch; fine
			_ = f
		}
	}
	if !foundMismatch {
		t.Fatalf("verdict = %+v, want missing-reveal for agent 1", verdict.Fouls)
	}
}

// --- Frequency screening ---------------------------------------------------------

func TestFrequencyCheckHonestSample(t *testing.T) {
	strategy := game.Mixed{0.5, 0.5}
	src := prng.New(14)
	sampler, err := strategy.Sampler()
	if err != nil {
		t.Fatal(err)
	}
	actions := make([]int, 2000)
	for i := range actions {
		actions[i] = sampler.Sample(src)
	}
	stat, suspicious, err := FrequencyCheck(strategy, actions, 6.63) // χ²(1) at 1%
	if err != nil {
		t.Fatal(err)
	}
	if suspicious {
		t.Fatalf("honest sample flagged: statistic %v", stat)
	}
}

func TestFrequencyCheckDetectsBias(t *testing.T) {
	strategy := game.Mixed{0.5, 0.5}
	actions := make([]int, 2000)
	for i := range actions {
		if i%10 == 0 {
			actions[i] = 0
		} else {
			actions[i] = 1 // 90% tails against a declared 50/50
		}
	}
	stat, suspicious, err := FrequencyCheck(strategy, actions, 6.63)
	if err != nil {
		t.Fatal(err)
	}
	if !suspicious {
		t.Fatalf("biased sample not flagged: statistic %v", stat)
	}
}

func TestFrequencyCheckZeroProbabilityAction(t *testing.T) {
	strategy := game.Mixed{1, 0}
	_, suspicious, err := FrequencyCheck(strategy, []int{0, 0, 1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !suspicious {
		t.Fatal("zero-probability action not flagged")
	}
}

func TestFrequencyCheckErrors(t *testing.T) {
	if _, _, err := FrequencyCheck(game.Mixed{}, nil, 1); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("empty strategy: %v", err)
	}
	if _, _, err := FrequencyCheck(game.Mixed{1}, []int{3}, 1); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("out of range action: %v", err)
	}
	if stat, susp, err := FrequencyCheck(game.Mixed{1}, nil, 1); err != nil || stat != 0 || susp {
		t.Fatalf("empty sample: %v %v %v", stat, susp, err)
	}
}

func TestQuickExpectedActionDeterministic(t *testing.T) {
	f := func(seed uint64, agentRaw, roundRaw uint8) bool {
		strategy := game.Mixed{0.25, 0.25, 0.5}
		agent := int(agentRaw % 8)
		round := int(roundRaw)
		a1, err1 := ExpectedAction(strategy, seed, agent, round)
		a2, err2 := ExpectedAction(strategy, seed, agent, round)
		return err1 == nil && err2 == nil && a1 == a2 && a1 >= 0 && a1 < 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendCodecsRoundTrip(t *testing.T) {
	buf := make([]byte, 0, 32)
	for _, a := range []int{0, 1, 7, 99, -1, 123456} {
		buf = AppendAction(buf[:0], a)
		if string(buf) != string(EncodeAction(a)) {
			t.Fatalf("AppendAction(%d) = %q, EncodeAction = %q", a, buf, EncodeAction(a))
		}
		got, err := DecodeAction(buf)
		if err != nil || got != a {
			t.Fatalf("DecodeAction(%q) = %d, %v", buf, got, err)
		}
	}
	for _, s := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
		buf = AppendSeed(buf[:0], s)
		if string(buf) != string(EncodeSeed(s)) {
			t.Fatalf("AppendSeed(%d) = %q, EncodeSeed = %q", s, buf, EncodeSeed(s))
		}
		got, err := DecodeSeed(buf)
		if err != nil || got != s {
			t.Fatalf("DecodeSeed(%q) = %d, %v", buf, got, err)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, bad := range [][]byte{nil, []byte(""), []byte("x"), []byte("1x2"), []byte("-"), []byte("999999999999999999999999")} {
		if _, err := DecodeAction(bad); err == nil {
			t.Fatalf("DecodeAction(%q) accepted garbage", bad)
		}
	}
	for _, bad := range [][]byte{nil, []byte(""), []byte("xyz"), []byte("12345678901234567")} {
		if _, err := DecodeSeed(bad); err == nil {
			t.Fatalf("DecodeSeed(%q) accepted garbage", bad)
		}
	}
}

func TestPerRoundIntoMatchesPerRound(t *testing.T) {
	g := game.PrisonersDilemma()
	src := prng.New(3)
	ev := PlayEvidence{
		Round:       1,
		PrevOutcome: game.Profile{1, 1},
		Commitments: make([]commit.Digest, 2),
		Openings:    make([]commit.Opening, 2),
		Revealed:    []bool{true, false}, // agent 1 withholds
	}
	ev.Commitments[0], ev.Openings[0] = commit.Commit(src, EncodeAction(1))
	wantVerdict, wantActions, err := PerRound(g, ev)
	if err != nil {
		t.Fatal(err)
	}
	actions := make(game.Profile, 2)
	var verdict Verdict
	verdict.Fouls = verdict.Fouls[:0]
	if err := PerRoundInto(g, ev, actions, &verdict); err != nil {
		t.Fatal(err)
	}
	if !actions.Equal(wantActions) {
		t.Fatalf("actions %v, want %v", actions, wantActions)
	}
	if len(verdict.Fouls) != len(wantVerdict.Fouls) {
		t.Fatalf("fouls %v, want %v", verdict.Fouls, wantVerdict.Fouls)
	}
	if err := PerRoundInto(g, ev, make(game.Profile, 3), &verdict); err == nil {
		t.Fatal("wrong-arity action buffer accepted")
	}
}

func TestGuiltyEmptyDoesNotAllocate(t *testing.T) {
	var v Verdict
	if a := testing.AllocsPerRun(100, func() {
		if v.Guilty() != nil {
			t.Fatal("empty verdict produced guilty agents")
		}
	}); a != 0 {
		t.Fatalf("Guilty() on empty verdict allocated %v times", a)
	}
}
