package commit

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"

	"gameauthority/internal/prng"
)

// DigestSize is the size in bytes of a commitment digest.
const DigestSize = sha256.Size

// NonceSize is the size in bytes of the blinding nonce.
const NonceSize = 32

// domainTag separates this scheme's hashes from any other SHA-256 use.
const domainTag = "gameauthority/commit/v1"

// smallValue is the largest value length hashed entirely on the stack; the
// protocol's committed values (encoded actions and seeds) are far smaller.
const smallValue = 64

// Sentinel errors for verification failures. Callers (the judicial service)
// match on these to classify foul play.
var (
	ErrDigestMismatch = errors.New("commit: opening does not match digest")
	ErrBadNonceSize   = errors.New("commit: nonce has wrong size")
)

// Digest is an opaque commitment value that can be published and agreed on
// before the committed value is revealed.
type Digest [DigestSize]byte

// Opening reveals a previously committed value together with its nonce.
type Opening struct {
	Value []byte
	Nonce [NonceSize]byte
}

// Commit produces a commitment to value using randomness drawn from src.
// It returns the public digest and the private opening the committer must
// keep until the reveal phase.
func Commit(src *prng.Source, value []byte) (Digest, Opening) {
	var op Opening
	d := CommitInto(src, value, &op)
	return d, op
}

// CommitInto is the allocation-free variant of Commit for per-session
// scratch openings: the nonce is drawn from src, value is copied into
// op.Value reusing its capacity, and the digest is computed with a
// single-shot SHA-256 over a stack buffer. The returned digest commits to
// op exactly as Commit would.
func CommitInto(src *prng.Source, value []byte, op *Opening) Digest {
	for i := 0; i < NonceSize; i += 8 {
		binary.LittleEndian.PutUint64(op.Nonce[i:], src.Uint64())
	}
	op.Value = append(op.Value[:0], value...)
	return hash(op.Value, op.Nonce)
}

// Verify checks that opening opens digest. A nil error means the opening is
// valid; ErrDigestMismatch means the value or nonce was altered.
func Verify(digest Digest, opening Opening) error {
	if hash(opening.Value, opening.Nonce) != digest {
		return ErrDigestMismatch
	}
	return nil
}

// hash computes SHA-256(domain ‖ len(value) ‖ value ‖ nonce) in one shot.
// Values up to smallValue bytes (every value the protocol commits) are
// assembled on the stack, so both committing and verifying are
// allocation-free on the play hot path.
func hash(value []byte, nonce [NonceSize]byte) Digest {
	var stack [len(domainTag) + 8 + smallValue + NonceSize]byte
	var buf []byte
	if len(value) <= smallValue {
		buf = stack[:0]
	} else {
		buf = make([]byte, 0, len(domainTag)+8+len(value)+NonceSize)
	}
	buf = append(buf, domainTag...)
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(value)))
	buf = append(buf, lenBuf[:]...)
	buf = append(buf, value...)
	buf = append(buf, nonce[:]...)
	return sha256.Sum256(buf)
}

// Equal reports whether two openings commit to the same value (ignores
// nonce). Used by audit code when comparing revealed actions.
func (o Opening) Equal(other Opening) bool {
	return bytes.Equal(o.Value, other.Value)
}

// Clone returns a deep copy of the opening so callers can stash it without
// aliasing the committer's buffer.
func (o Opening) Clone() Opening {
	return Opening{Value: append([]byte(nil), o.Value...), Nonce: o.Nonce}
}
