// Package commit implements the cryptographic commitment scheme the game
// authority uses to make action choices private and simultaneous (paper
// §3.3, following Blum's coin-flipping-by-telephone construction [4]).
//
// A commitment is SHA-256(domain ‖ len(value) ‖ value ‖ nonce) with a
// 256-bit random nonce. Against the simulated adversary this is hiding
// (the nonce blinds the value) and binding (finding a second preimage is
// infeasible), which is all the play protocol relies on: an agent must not
// learn other agents' choices before committing, and must not be able to
// change its own choice after the commitments are agreed upon.
package commit

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"

	"gameauthority/internal/prng"
)

// DigestSize is the size in bytes of a commitment digest.
const DigestSize = sha256.Size

// NonceSize is the size in bytes of the blinding nonce.
const NonceSize = 32

// domainTag separates this scheme's hashes from any other SHA-256 use.
var domainTag = []byte("gameauthority/commit/v1")

// Sentinel errors for verification failures. Callers (the judicial service)
// match on these to classify foul play.
var (
	ErrDigestMismatch = errors.New("commit: opening does not match digest")
	ErrBadNonceSize   = errors.New("commit: nonce has wrong size")
)

// Digest is an opaque commitment value that can be published and agreed on
// before the committed value is revealed.
type Digest [DigestSize]byte

// Opening reveals a previously committed value together with its nonce.
type Opening struct {
	Value []byte
	Nonce [NonceSize]byte
}

// Commit produces a commitment to value using randomness drawn from src.
// It returns the public digest and the private opening the committer must
// keep until the reveal phase.
func Commit(src *prng.Source, value []byte) (Digest, Opening) {
	var nonce [NonceSize]byte
	for i := 0; i < NonceSize; i += 8 {
		binary.LittleEndian.PutUint64(nonce[i:], src.Uint64())
	}
	op := Opening{Value: append([]byte(nil), value...), Nonce: nonce}
	return hash(op.Value, nonce), op
}

// Verify checks that opening opens digest. A nil error means the opening is
// valid; ErrDigestMismatch means the value or nonce was altered.
func Verify(digest Digest, opening Opening) error {
	if hash(opening.Value, opening.Nonce) != digest {
		return ErrDigestMismatch
	}
	return nil
}

func hash(value []byte, nonce [NonceSize]byte) Digest {
	h := sha256.New()
	h.Write(domainTag)
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(value)))
	h.Write(lenBuf[:])
	h.Write(value)
	h.Write(nonce[:])
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// Equal reports whether two openings commit to the same value (ignores
// nonce). Used by audit code when comparing revealed actions.
func (o Opening) Equal(other Opening) bool {
	return bytes.Equal(o.Value, other.Value)
}

// Clone returns a deep copy of the opening so callers can stash it without
// aliasing the committer's buffer.
func (o Opening) Clone() Opening {
	return Opening{Value: append([]byte(nil), o.Value...), Nonce: o.Nonce}
}
