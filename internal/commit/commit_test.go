package commit

import (
	"testing"
	"testing/quick"

	"gameauthority/internal/prng"
)

func TestCommitVerifyRoundTrip(t *testing.T) {
	src := prng.New(1)
	for _, value := range [][]byte{nil, {}, []byte("x"), []byte("hello world"), make([]byte, 1024)} {
		d, op := Commit(src, value)
		if err := Verify(d, op); err != nil {
			t.Fatalf("Verify(Commit(%q)) = %v, want nil", value, err)
		}
	}
}

func TestVerifyDetectsValueTamper(t *testing.T) {
	src := prng.New(2)
	d, op := Commit(src, []byte("heads"))
	op.Value = []byte("tails")
	if err := Verify(d, op); err != ErrDigestMismatch {
		t.Fatalf("tampered value: err = %v, want ErrDigestMismatch", err)
	}
}

func TestVerifyDetectsNonceTamper(t *testing.T) {
	src := prng.New(3)
	d, op := Commit(src, []byte("heads"))
	op.Nonce[0] ^= 1
	if err := Verify(d, op); err != ErrDigestMismatch {
		t.Fatalf("tampered nonce: err = %v, want ErrDigestMismatch", err)
	}
}

func TestCommitmentsAreHiding(t *testing.T) {
	// Two commitments to the same value with different randomness must
	// produce different digests — otherwise observers could test guesses.
	src := prng.New(4)
	d1, _ := Commit(src, []byte("heads"))
	d2, _ := Commit(src, []byte("heads"))
	if d1 == d2 {
		t.Fatal("same value committed twice produced identical digests")
	}
}

func TestEmptyVsNilDistinctFromOthers(t *testing.T) {
	// The length prefix must prevent ambiguity between value boundaries:
	// commit("ab" ‖ nonce-start) must not collide with commit("a").
	src := prng.New(5)
	dA, opA := Commit(src, []byte("a"))
	if err := Verify(dA, Opening{Value: []byte("ab"), Nonce: opA.Nonce}); err == nil {
		t.Fatal("extended value verified against original digest")
	}
}

func TestOpeningCloneIndependence(t *testing.T) {
	src := prng.New(6)
	_, op := Commit(src, []byte("abc"))
	cl := op.Clone()
	cl.Value[0] = 'z'
	if op.Value[0] == 'z' {
		t.Fatal("Clone aliased the original value buffer")
	}
	if !op.Equal(Opening{Value: []byte("abc")}) {
		t.Fatal("Equal should compare values only")
	}
}

func TestQuickRoundTripAndBinding(t *testing.T) {
	f := func(seed uint64, value, other []byte) bool {
		src := prng.New(seed)
		d, op := Commit(src, value)
		if Verify(d, op) != nil {
			return false
		}
		if string(other) != string(value) {
			bad := op
			bad.Value = other
			if Verify(d, bad) == nil {
				return false // binding violated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCommitDeterministicGivenSeed(t *testing.T) {
	d1, o1 := Commit(prng.New(9), []byte("v"))
	d2, o2 := Commit(prng.New(9), []byte("v"))
	if d1 != d2 || o1.Nonce != o2.Nonce {
		t.Fatal("commitment must be deterministic for a fixed seed (replayable audits)")
	}
}

func BenchmarkCommit(b *testing.B) {
	src := prng.New(1)
	value := []byte("action:3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Commit(src, value)
	}
}

func BenchmarkVerify(b *testing.B) {
	src := prng.New(1)
	d, op := Commit(src, []byte("action:3"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(d, op); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCommitIntoMatchesCommit(t *testing.T) {
	value := []byte("action:3")
	d1, op1 := Commit(prng.New(42), value)
	var op2 Opening
	op2.Value = make([]byte, 0, 16) // pre-grown scratch, as the hot path uses
	d2 := CommitInto(prng.New(42), value, &op2)
	if d1 != d2 {
		t.Fatal("CommitInto digest differs from Commit")
	}
	if !op1.Equal(op2) || op1.Nonce != op2.Nonce {
		t.Fatal("CommitInto opening differs from Commit")
	}
	if err := Verify(d2, op2); err != nil {
		t.Fatalf("CommitInto opening does not verify: %v", err)
	}
}

func TestCommitIntoReusesScratch(t *testing.T) {
	src := prng.New(1)
	var op Opening
	_ = CommitInto(src, []byte("first-value"), &op)
	buf := &op.Value[0]
	d := CommitInto(src, []byte("second"), &op)
	if &op.Value[0] != buf {
		t.Fatal("CommitInto reallocated the opening's value buffer")
	}
	if err := Verify(d, op); err != nil {
		t.Fatalf("reused opening does not verify: %v", err)
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	src := prng.New(1)
	var op Opening
	value := []byte("action:3")
	var d Digest
	if a := testing.AllocsPerRun(100, func() { d = CommitInto(src, value, &op) }); a != 0 {
		t.Fatalf("CommitInto allocated %v times per run", a)
	}
	if a := testing.AllocsPerRun(100, func() {
		if err := Verify(d, op); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Fatalf("Verify allocated %v times per run", a)
	}
}

func TestLargeValueStillHashes(t *testing.T) {
	big := make([]byte, smallValue*4)
	for i := range big {
		big[i] = byte(i)
	}
	d, op := Commit(prng.New(9), big)
	if err := Verify(d, op); err != nil {
		t.Fatalf("large value: %v", err)
	}
	op.Value[0] ^= 1
	if err := Verify(d, op); err == nil {
		t.Fatal("tampered large value verified")
	}
}
