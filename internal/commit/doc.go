// Package commit implements the cryptographic commitment scheme the game
// authority uses to make action choices private and simultaneous (paper
// §3.3, following Blum's coin-flipping-by-telephone construction [4]).
//
// A commitment is SHA-256(domain ‖ len(value) ‖ value ‖ nonce) with a
// 256-bit random nonce. Against the simulated adversary this is hiding
// (the nonce blinds the value) and binding (finding a second preimage is
// infeasible), which is all the play protocol relies on: an agent must not
// learn other agents' choices before committing, and must not be able to
// change its own choice after the commitments are agreed upon.
package commit
