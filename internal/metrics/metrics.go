package metrics

import (
	"errors"
	"math"
	"sort"

	"gameauthority/internal/game"
)

// Common errors.
var (
	ErrNoEquilibria = errors.New("metrics: game has no pure Nash equilibrium")
	ErrDegenerate   = errors.New("metrics: degenerate input")
)

// OptimalSocialCost returns the minimum social cost over all pure profiles
// (the centralistic optimum) and a witnessing profile.
func OptimalSocialCost(g game.Game, limit int) (float64, game.Profile, error) {
	if limit <= 0 {
		limit = 1 << 20
	}
	if _, err := game.ProfileSpaceSize(g, limit); err != nil {
		return 0, nil, err
	}
	best := math.Inf(1)
	var bestP game.Profile
	game.ForEachProfile(g, func(p game.Profile) bool {
		if c := game.SocialCost(g, p, nil); c < best {
			best = c
			bestP = p.Clone()
		}
		return true
	})
	return best, bestP, nil
}

// PriceOfAnarchy returns worst-PNE social cost divided by the optimum.
// Requires at least one PNE and a positive optimum.
func PriceOfAnarchy(g game.Game, limit int) (float64, error) {
	ratio, _, err := anarchyRatios(g, limit)
	return ratio, err
}

// PriceOfStability returns best-PNE social cost divided by the optimum.
func PriceOfStability(g game.Game, limit int) (float64, error) {
	_, ratio, err := anarchyRatios(g, limit)
	return ratio, err
}

func anarchyRatios(g game.Game, limit int) (poa, pos float64, err error) {
	opt, _, err := OptimalSocialCost(g, limit)
	if err != nil {
		return 0, 0, err
	}
	pnes, err := game.PureNashEquilibria(g, limit)
	if err != nil {
		return 0, 0, err
	}
	if len(pnes) == 0 {
		return 0, 0, ErrNoEquilibria
	}
	worst, best := math.Inf(-1), math.Inf(1)
	for _, p := range pnes {
		c := game.SocialCost(g, p, nil)
		if c > worst {
			worst = c
		}
		if c < best {
			best = c
		}
	}
	if opt <= 0 {
		return 0, 0, ErrDegenerate
	}
	return worst / opt, best / opt, nil
}

// PriceOfMalice follows [21]: the ratio between the social cost of the
// selfish system with b malicious agents and the social cost with none
// (both measured over the honest agents). costWithout must be positive.
func PriceOfMalice(costWith, costWithout float64) (float64, error) {
	if costWithout <= 0 {
		return 0, ErrDegenerate
	}
	return costWith / costWithout, nil
}

// MultiRoundAnarchyCost returns R(k) = SC(k)/OPT(k) for the repeated
// resource allocation game: expectedMax is the measured E[M(k)] (worst-case
// over sequences approximated by the empirical mean over seeds) and opt is
// OPT(k) = ⌈nk/b⌉.
func MultiRoundAnarchyCost(expectedMax float64, opt int64) (float64, error) {
	if opt <= 0 {
		return 0, ErrDegenerate
	}
	return expectedMax / float64(opt), nil
}

// Theorem5Bound returns the paper's bound 1 + 2b/k on R(k).
func Theorem5Bound(b, k int) float64 {
	if k <= 0 {
		return math.Inf(1)
	}
	return 1 + 2*float64(b)/float64(k)
}

// --- Statistics helpers ------------------------------------------------------

// Summary holds basic sample statistics.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P95, P99 float64
}

// Summarize computes summary statistics of xs; zero value for empty input.
// It copies and sorts the sample; a caller that already holds (or can
// afford to sort) its sample should use SummarizeSorted and skip the copy.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return SummarizeSorted(sorted)
}

// SummarizeSorted computes summary statistics of an ascending-sorted
// sample without copying it; zero value for empty input. The statistics
// are exactly Summarize's — percentiles are nearest-rank with linear
// interpolation.
func SummarizeSorted(sorted []float64) Summary {
	var s Summary
	s.N = len(sorted)
	if s.N == 0 {
		return s
	}
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	var varSum float64
	for _, x := range sorted {
		d := x - s.Mean
		varSum += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(varSum / float64(s.N-1))
	}
	s.Min = sorted[0]
	s.Max = sorted[s.N-1]
	s.P50 = quantile(sorted, 0.50)
	s.P95 = quantile(sorted, 0.95)
	s.P99 = quantile(sorted, 0.99)
	return s
}

// quantile returns the q-quantile of a sorted sample (nearest-rank with
// linear interpolation).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanInt64 returns the mean of an int64 sample (0 for empty input).
func MeanInt64(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum int64
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}
