// Package metrics implements the cost criteria the paper studies (§1, §6):
// the price of anarchy (PoA [18,17]), the price of stability (PoS [3]), the
// price of malice (PoM [21]), and the new multi-round anarchy cost R(k) for
// repeated games. It also carries the small statistics helpers shared by
// the experiment harnesses.
package metrics
