package metrics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"gameauthority/internal/game"
)

func TestOptimalSocialCost(t *testing.T) {
	g := game.PrisonersDilemma()
	opt, p, err := OptimalSocialCost(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Cooperate/cooperate has social cost 2 — the optimum.
	if opt != 2 || !p.Equal(game.Profile{0, 0}) {
		t.Fatalf("opt = %v at %v, want 2 at [0 0]", opt, p)
	}
}

func TestPoAPoSPrisonersDilemma(t *testing.T) {
	g := game.PrisonersDilemma()
	poa, err := PriceOfAnarchy(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	pos, err := PriceOfStability(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Unique PNE (defect,defect) costs 4; optimum 2 → PoA = PoS = 2.
	if math.Abs(poa-2) > 1e-12 || math.Abs(pos-2) > 1e-12 {
		t.Fatalf("PoA=%v PoS=%v, want 2, 2", poa, pos)
	}
}

func TestPoAPoSGapCoordination(t *testing.T) {
	g := game.CoordinationGame()
	poa, err := PriceOfAnarchy(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	pos, err := PriceOfStability(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Equilibria (L,L) cost 2 and (R,R) cost 4; optimum 2.
	if math.Abs(pos-1) > 1e-12 {
		t.Fatalf("PoS = %v, want 1", pos)
	}
	if math.Abs(poa-2) > 1e-12 {
		t.Fatalf("PoA = %v, want 2", poa)
	}
	if pos > poa {
		t.Fatal("PoS must never exceed PoA")
	}
}

func TestPoAErrNoEquilibria(t *testing.T) {
	if _, err := PriceOfAnarchy(game.MatchingPennies(), 0); !errors.Is(err, ErrNoEquilibria) {
		t.Fatalf("matching pennies PoA err = %v, want ErrNoEquilibria", err)
	}
}

func TestPriceOfMalice(t *testing.T) {
	pom, err := PriceOfMalice(15, 10)
	if err != nil || math.Abs(pom-1.5) > 1e-12 {
		t.Fatalf("PoM = %v, %v; want 1.5", pom, err)
	}
	if _, err := PriceOfMalice(1, 0); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("zero base cost: %v", err)
	}
}

func TestMultiRoundAnarchyCost(t *testing.T) {
	r, err := MultiRoundAnarchyCost(12, 10)
	if err != nil || math.Abs(r-1.2) > 1e-12 {
		t.Fatalf("R = %v, %v", r, err)
	}
	if _, err := MultiRoundAnarchyCost(1, 0); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("zero OPT: %v", err)
	}
}

func TestTheorem5Bound(t *testing.T) {
	if got := Theorem5Bound(4, 8); math.Abs(got-2) > 1e-12 {
		t.Fatalf("bound(4,8) = %v, want 2", got)
	}
	if !math.IsInf(Theorem5Bound(4, 0), 1) {
		t.Fatal("bound at k=0 should be +Inf")
	}
	// Monotone decreasing in k, approaching 1.
	prev := math.Inf(1)
	for _, k := range []int{1, 10, 100, 1000} {
		b := Theorem5Bound(2, k)
		if b >= prev {
			t.Fatalf("bound not decreasing at k=%d", k)
		}
		prev = b
	}
	if prev < 1 {
		t.Fatal("bound fell below 1")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Mean-3) > 1e-12 || math.Abs(s.P50-3) > 1e-12 {
		t.Fatalf("mean/median = %v/%v, want 3/3", s.Mean, s.P50)
	}
	if s.Std <= 0 {
		t.Fatalf("std = %v", s.Std)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
	one := Summarize([]float64{7})
	if one.P95 != 7 || one.Std != 0 {
		t.Fatalf("singleton summary = %+v", one)
	}
}

func TestMeanInt64(t *testing.T) {
	if got := MeanInt64([]int64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
	if got := MeanInt64(nil); got != 0 {
		t.Fatalf("empty mean = %v", got)
	}
}

func TestQuickSummarizeBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPoSNeverExceedsPoA(t *testing.T) {
	// Random 2x2 cost games with positive costs: when PNEs exist,
	// PoS ≤ PoA must hold.
	f := func(a, b, c, d, e, ff, g2, h uint8) bool {
		costA := [][]float64{{float64(a%9) + 1, float64(b%9) + 1}, {float64(c%9) + 1, float64(d%9) + 1}}
		costB := [][]float64{{float64(e%9) + 1, float64(ff%9) + 1}, {float64(g2%9) + 1, float64(h%9) + 1}}
		g, err := game.NewBimatrix("rand", costA, costB)
		if err != nil {
			return false
		}
		poa, errA := PriceOfAnarchy(g, 0)
		pos, errS := PriceOfStability(g, 0)
		if errors.Is(errA, ErrNoEquilibria) {
			return errors.Is(errS, ErrNoEquilibria)
		}
		if errA != nil || errS != nil {
			return false
		}
		return pos <= poa+1e-12 && pos >= 1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
