package metrics

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Counters are the authority host's operational counters, exported on the
// GET /metrics Prometheus text endpoint. All fields are atomic: the play
// hot path touches them lock-free and allocation-free.
type Counters struct {
	// Sessions is the number of currently hosted sessions (gauge).
	Sessions atomic.Int64
	// SessionsCreated counts every session ever hosted.
	SessionsCreated atomic.Int64
	// Plays counts completed plays across all hosted sessions.
	Plays atomic.Int64
	// Fouls counts judicial fouls observed in hosted plays.
	Fouls atomic.Int64
	// Convictions counts guilty verdicts observed in hosted plays.
	Convictions atomic.Int64
	// Recoveries counts sessions restored from the durable store.
	Recoveries atomic.Int64
	// ReplayedRounds counts plays re-executed during recovery.
	ReplayedRounds atomic.Int64
	// Snapshots counts compacted snapshots written to the store.
	Snapshots atomic.Int64
	// WALRecords counts write-ahead-log records appended to the store.
	WALRecords atomic.Int64
	// WSConnections is the number of live WebSocket connections (gauge).
	WSConnections atomic.Int64
	// EventsDropped counts events dropped for slow subscribers (SSE and
	// WebSocket); subscribers are told how many they missed via lag
	// notices.
	EventsDropped atomic.Int64
	// StreamTimeouts counts streaming connections (SSE or WebSocket)
	// closed because a write deadline expired — a dead or hopelessly
	// slow reader.
	StreamTimeouts atomic.Int64
	// FaultsInjected counts faults injected by an attached fault plan
	// (chaos testing only; zero in production).
	FaultsInjected atomic.Int64
	// Reconnects counts WebSocket clients that re-dialed after losing a
	// connection (Hello carried the reconnect flag).
	Reconnects atomic.Int64
	// ResumedSubscriptions counts event subscriptions re-established with
	// a resume token after a reconnect.
	ResumedSubscriptions atomic.Int64
	// DedupedPlays counts play rounds answered from the journal instead
	// of being re-executed, because a retried command's watermark showed
	// the round had already completed.
	DedupedPlays atomic.Int64
	// BreakerOpens counts per-session circuit-breaker trips after
	// repeated store failures.
	BreakerOpens atomic.Int64
	// BatchedPlays counts plays journaled through batch WAL records (the
	// PlayN path) rather than one record per play.
	BatchedPlays atomic.Int64
	// CommitEpochs counts group-commit fsync epochs flushed by the store's
	// background committer.
	CommitEpochs atomic.Int64
	// Fsyncs counts WAL-handle fsyncs issued by group-commit epochs.
	Fsyncs atomic.Int64
}

// promMetric is one Prometheus exposition entry.
type promMetric struct {
	name string
	kind string // gauge | counter
	help string
	val  *atomic.Int64
}

// WritePrometheus renders the counters in the Prometheus text exposition
// format (version 0.0.4).
func (c *Counters) WritePrometheus(w io.Writer) error {
	metrics := []promMetric{
		{"gameauthority_sessions", "gauge", "Currently hosted authority sessions.", &c.Sessions},
		{"gameauthority_sessions_created_total", "counter", "Sessions ever hosted.", &c.SessionsCreated},
		{"gameauthority_plays_total", "counter", "Completed plays across hosted sessions.", &c.Plays},
		{"gameauthority_fouls_total", "counter", "Judicial fouls observed in hosted plays.", &c.Fouls},
		{"gameauthority_convictions_total", "counter", "Guilty verdicts observed in hosted plays.", &c.Convictions},
		{"gameauthority_recoveries_total", "counter", "Sessions restored from the durable store.", &c.Recoveries},
		{"gameauthority_replayed_rounds_total", "counter", "Plays re-executed during recovery.", &c.ReplayedRounds},
		{"gameauthority_snapshots_total", "counter", "Compacted snapshots written to the store.", &c.Snapshots},
		{"gameauthority_wal_records_total", "counter", "Write-ahead-log records appended to the store.", &c.WALRecords},
		{"gameauthority_ws_connections", "gauge", "Live WebSocket connections.", &c.WSConnections},
		{"gameauthority_events_dropped_total", "counter", "Events dropped for slow streaming subscribers.", &c.EventsDropped},
		{"gameauthority_stream_timeouts_total", "counter", "Streaming connections closed by a write deadline.", &c.StreamTimeouts},
		{"gameauthority_faults_injected_total", "counter", "Faults injected by an attached fault plan.", &c.FaultsInjected},
		{"gameauthority_reconnects_total", "counter", "WebSocket clients re-dialing after a lost connection.", &c.Reconnects},
		{"gameauthority_resumed_subscriptions_total", "counter", "Event subscriptions re-established with a resume token.", &c.ResumedSubscriptions},
		{"gameauthority_deduped_plays_total", "counter", "Play rounds answered from the journal on retried commands.", &c.DedupedPlays},
		{"gameauthority_breaker_opens_total", "counter", "Per-session circuit-breaker trips on repeated store failures.", &c.BreakerOpens},
		{"gameauthority_batched_plays_total", "counter", "Plays journaled through batch WAL records (PlayN).", &c.BatchedPlays},
		{"gameauthority_commit_epochs_total", "counter", "Group-commit fsync epochs flushed by the committer.", &c.CommitEpochs},
		{"gameauthority_fsyncs_total", "counter", "WAL-handle fsyncs issued by group-commit epochs.", &c.Fsyncs},
	}
	for _, m := range metrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			m.name, m.help, m.name, m.kind, m.name, m.val.Load()); err != nil {
			return err
		}
	}
	return nil
}
