package gameauthority_test

import (
	"context"
	"errors"
	"testing"

	ga "gameauthority"
)

// boundedAndUnboundedTwins builds two identically-seeded supervised mixed
// sessions with the Fig. 1 manipulator, one history-bounded, one not.
func boundedAndUnboundedTwins(t *testing.T, limit int) (bounded, unbounded ga.Session) {
	t.Helper()
	mk := func(opts ...ga.Option) ga.Session {
		manip := &ga.MixedAgent{Override: func(int, int) int { return ga.ManipulateAction }}
		base := []ga.Option{
			ga.WithActual(ga.MatchingPenniesManipulated()),
			ga.WithStrategies(func(int, ga.Profile) ga.MixedProfile {
				return ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
			}),
			ga.WithMixedAgents(nil, manip),
			ga.WithPunishment(ga.NewDisconnectScheme(2, 0)),
			ga.WithAudit(ga.AuditPerRound),
			ga.WithSeed(11),
		}
		s, err := ga.New(ga.MatchingPennies(), append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return mk(ga.WithHistoryLimit(limit)), mk()
}

func TestHistoryLimitWraparoundThroughSessionAPI(t *testing.T) {
	ctx := context.Background()
	g := ga.PrisonersDilemma()
	s, err := ga.New(g, ga.WithSeed(3), ga.WithHistoryLimit(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx, 10); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Rounds; got != 10 {
		t.Fatalf("Stats().Rounds = %d, want 10 (eviction must not lose the count)", got)
	}
	results := s.Results()
	if len(results) != 4 {
		t.Fatalf("bounded Results() returned %d plays, want 4", len(results))
	}
	for i, want := range []int{6, 7, 8, 9} {
		if results[i].Round != want {
			t.Fatalf("results[%d].Round = %d, want %d (oldest-first ring order)", i, results[i].Round, want)
		}
	}
	if _, ok := s.ResultAt(5); ok {
		t.Fatal("ResultAt(5) returned an evicted play")
	}
	if r, ok := s.ResultAt(9); !ok || r.Round != 9 {
		t.Fatalf("ResultAt(9) = %+v, %v", r, ok)
	}
	if _, ok := s.ResultAt(10); ok {
		t.Fatal("ResultAt(10) returned an unplayed round")
	}
}

func TestHistoryLimitStatsMatchUnbounded(t *testing.T) {
	ctx := context.Background()
	bounded, unbounded := boundedAndUnboundedTwins(t, 3)
	const rounds = 40
	for i := 0; i < rounds; i++ {
		rb, err := bounded.Play(ctx)
		if err != nil {
			t.Fatal(err)
		}
		ru, err := unbounded.Play(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !rb.Outcome.Equal(ru.Outcome) {
			t.Fatalf("round %d: bounded outcome %v != unbounded %v", i, rb.Outcome, ru.Outcome)
		}
	}
	sb, su := bounded.Stats(), unbounded.Stats()
	if sb.Rounds != su.Rounds || sb.Fouls != su.Fouls {
		t.Fatalf("stats diverge after eviction: bounded %+v, unbounded %+v", sb, su)
	}
	for i := range sb.CumulativeCost {
		if sb.CumulativeCost[i] != su.CumulativeCost[i] {
			t.Fatalf("agent %d cumulative cost %v != %v", i, sb.CumulativeCost[i], su.CumulativeCost[i])
		}
	}
	if len(bounded.Results()) != 3 {
		t.Fatalf("bounded retained %d plays, want 3", len(bounded.Results()))
	}
}

func TestHistoryLimitObserverDeliveryUnaffected(t *testing.T) {
	ctx := context.Background()
	bounded, unbounded := boundedAndUnboundedTwins(t, 2)
	var events []ga.Event
	cancel := bounded.Subscribe(ga.ObserverFunc(func(e ga.Event) {
		if e.Kind == ga.EventPlay {
			events = append(events, e)
		}
	}))
	defer cancel()
	const rounds = 9
	if _, err := bounded.Run(ctx, rounds); err != nil {
		t.Fatal(err)
	}
	if _, err := unbounded.Run(ctx, rounds); err != nil {
		t.Fatal(err)
	}
	if len(events) != rounds {
		t.Fatalf("observer saw %d play events, want %d (eviction must not drop deliveries)", len(events), rounds)
	}
	// Every event must carry the play it announced — including plays long
	// evicted from the ring — so compare against the unbounded twin.
	full := unbounded.Results()
	for i, e := range events {
		if e.Round != i {
			t.Fatalf("event %d has Round %d", i, e.Round)
		}
		if !e.Outcome.Equal(full[i].Outcome) {
			t.Fatalf("event %d outcome %v, want %v (event payloads must be cloned, not ring-backed)",
				i, e.Outcome, full[i].Outcome)
		}
	}
}

func TestHistoryLimitResultCloneSurvivesEviction(t *testing.T) {
	ctx := context.Background()
	s, err := ga.New(ga.PrisonersDilemma(), ga.WithSeed(5), ga.WithHistoryLimit(2))
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Play(ctx)
	if err != nil {
		t.Fatal(err)
	}
	keep := first.Clone()
	wantOutcome := append(ga.Profile(nil), keep.Outcome...)
	if _, err := s.Run(ctx, 6); err != nil { // evict round 0 several times over
		t.Fatal(err)
	}
	if !keep.Outcome.Equal(wantOutcome) {
		t.Fatalf("cloned result mutated by eviction: %v != %v", keep.Outcome, wantOutcome)
	}
}

func TestHistoryLimitValidation(t *testing.T) {
	_, err := ga.New(ga.PrisonersDilemma(), ga.WithHistoryLimit(-1))
	if err == nil || !errors.Is(err, ga.ErrConfig) {
		t.Fatalf("negative history limit: err = %v, want ErrConfig", err)
	}
}

func TestHistoryLimitOnRRAAndDistributed(t *testing.T) {
	ctx := context.Background()
	rra, err := ga.New(nil, ga.WithRRA(4, 2), ga.WithSeed(7), ga.WithHistoryLimit(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rra.Run(ctx, 8); err != nil {
		t.Fatal(err)
	}
	if got := len(rra.Results()); got != 3 {
		t.Fatalf("RRA retained %d, want 3", got)
	}
	if rra.Stats().Rounds != 8 {
		t.Fatalf("RRA Stats().Rounds = %d, want 8", rra.Stats().Rounds)
	}

	g4, err := ga.PublicGoods(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := ga.New(g4, ga.WithDistributed(4, 1, nil), ga.WithSeed(7), ga.WithHistoryLimit(2))
	if err != nil {
		t.Fatal(err)
	}
	defer dist.Close()
	if _, err := dist.Run(ctx, 5); err != nil {
		t.Fatal(err)
	}
	if got := len(dist.Results()); got != 2 {
		t.Fatalf("distributed retained %d, want 2", got)
	}
	if r, ok := dist.ResultAt(4); !ok || r.Round != 4 {
		t.Fatalf("distributed ResultAt(4) = %+v, %v", r, ok)
	}
	if _, ok := dist.ResultAt(1); ok {
		t.Fatal("distributed ResultAt(1) returned an evicted play")
	}
}
