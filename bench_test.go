// Benchmarks: one per experiment in DESIGN.md §2. Each bench regenerates
// its paper artifact (Fig. 1 analysis, Theorem 1 / Lemmas 2-3 behaviour,
// Theorem 5 curves, PoM reduction, audit/punishment/voting ablations) and
// reports the headline quantity via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction harness's performance profile. The
// full tables are printed by cmd/experiments.
package gameauthority_test

import (
	"fmt"
	"testing"

	ga "gameauthority"
	"gameauthority/internal/auth"
	"gameauthority/internal/bap"
	"gameauthority/internal/game"
	"gameauthority/internal/metrics"
	"gameauthority/internal/prng"
	"gameauthority/internal/punish"
	"gameauthority/internal/sim"
	"gameauthority/internal/ssba"
)

// BenchmarkEF1MatchingPennies regenerates Fig. 1's manipulation analysis:
// B's expected gain without the authority (≈ +4/round) and with it (≈ 0).
func BenchmarkEF1MatchingPennies(b *testing.B) {
	const rounds = 2000
	strategies := func(int, ga.Profile) ga.MixedProfile {
		return ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
	}
	var gainUnsup, gainSup float64
	for i := 0; i < b.N; i++ {
		manip := &ga.MixedAgent{Override: func(int, int) int { return ga.ManipulateAction }}
		unsup, err := ga.NewMixedSession(ga.MixedConfig{
			Elected: ga.MatchingPennies(), Actual: ga.MatchingPenniesManipulated(),
			Strategies: strategies, Agents: []*ga.MixedAgent{nil, manip},
			Mode: ga.AuditOff, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := unsup.Play(rounds); err != nil {
			b.Fatal(err)
		}
		sup, err := ga.NewMixedSession(ga.MixedConfig{
			Elected: ga.MatchingPennies(), Actual: ga.MatchingPenniesManipulated(),
			Strategies: strategies, Agents: []*ga.MixedAgent{nil, manip},
			Scheme: ga.NewDisconnectScheme(2, 0), Mode: ga.AuditPerRound, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sup.Play(rounds); err != nil {
			b.Fatal(err)
		}
		gainUnsup = unsup.CumulativePayoff(1) / rounds
		gainSup = sup.CumulativePayoff(1) / rounds
	}
	b.ReportMetric(gainUnsup, "gain-unsupervised/round")
	b.ReportMetric(gainSup, "gain-supervised/round")
}

// BenchmarkET1SSBA measures complete SSBA periods (clock-scheduled
// Byzantine agreements) per second with an equivocating Byzantine clock.
func BenchmarkET1SSBA(b *testing.B) {
	evil := prng.New(3)
	byz := map[int]sim.Adversary{3: sim.EquivocateAdversary(func(to int, payload any) any {
		msg, ok := payload.(ssba.Msg)
		if !ok {
			return payload
		}
		msg.Tick = int(evil.Uint64() % 8)
		return msg
	})}
	h, err := ssba.NewHarness(4, 1, 0, 17, func(id, pulse int) bap.Value { return "v" }, byz)
	if err != nil {
		b.Fatal(err)
	}
	m := h.Procs[0].M()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Net.Run(m) // one period = one agreement
	}
	b.StopTimer()
	if v := h.CheckDecisions(3); len(v) != 0 {
		b.Fatalf("agreement violations: %+v", v)
	}
}

// BenchmarkEL2Convergence measures SSBA convergence from random corrupted
// configurations (Lemma 2's quantity) for n=4, f=1.
func BenchmarkEL2Convergence(b *testing.B) {
	var total float64
	count := 0
	for i := 0; i < b.N; i++ {
		h, err := ssba.NewHarness(4, 1, 0, uint64(100+i), func(id, pulse int) bap.Value { return "v" }, nil)
		if err != nil {
			b.Fatal(err)
		}
		ent := prng.New(uint64(9000 + i))
		pulses := h.ConvergencePulses(ent.Uint64, 2, 100000)
		total += float64(pulses)
		count++
	}
	b.ReportMetric(total/float64(count), "pulses-to-converge")
}

// BenchmarkEL3Closure runs long post-convergence executions and requires
// exactly one violation-free agreement per period (Lemma 3).
func BenchmarkEL3Closure(b *testing.B) {
	h, err := ssba.NewHarness(4, 1, 0, 5, func(id, pulse int) bap.Value { return "steady" }, nil)
	if err != nil {
		b.Fatal(err)
	}
	ent := prng.New(6)
	if p := h.ConvergencePulses(ent.Uint64, 2, 100000); p > 100000 {
		b.Fatal("no convergence")
	}
	m := h.Procs[0].M()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before := len(h.Procs[0].Decisions())
		h.Net.Run(10 * m)
		after := len(h.Procs[0].Decisions())
		if after-before != 10 {
			b.Fatalf("agreements per 10 periods = %d", after-before)
		}
	}
	b.StopTimer()
	if v := h.CheckDecisions(10); len(v) != 0 {
		b.Fatalf("closure violations: %+v", v)
	}
}

// BenchmarkET5RRA regenerates one Theorem 5 curve point: R(k) for the
// supervised RRA game at n=8, b=4, k=1000.
func BenchmarkET5RRA(b *testing.B) {
	const (
		n, bb, k = 8, 4, 1000
	)
	var ratio float64
	for i := 0; i < b.N; i++ {
		h, err := ga.NewSupervisedRRA(n, bb, uint64(i), ga.NewDisconnectScheme(n, 0), true)
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Play(k); err != nil {
			b.Fatal(err)
		}
		r, err := ga.MultiRoundAnarchyCost(float64(h.RRA().MaxLoad()), ga.OptMaxLoad(n, bb, k))
		if err != nil {
			b.Fatal(err)
		}
		ratio = r
	}
	b.ReportMetric(ratio, "R(k)")
	b.ReportMetric(ga.Theorem5Bound(bb, k), "bound(1+2b/k)")
}

// BenchmarkEPoMInoculation regenerates the price-of-malice comparison on a
// 16x16 grid with 6 Byzantine nodes: selfish-only vs +Byzantine vs
// +Byzantine+authority.
func BenchmarkEPoMInoculation(b *testing.B) {
	var pomNoAuth, pomAuth float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i)
		base, err := game.NewInoculation(16, 16, 1, 48)
		if err != nil {
			b.Fatal(err)
		}
		secure, _ := base.Equilibrium(seed, 200)
		costHonestOnly := base.SocialCost(secure, base.HonestNodes())

		byzIDs := []int{50, 51, 52, 100, 101, 102}
		withByz, _ := game.NewInoculation(16, 16, 1, 48)
		withByz.SetByzantine(byzIDs...)
		secureB, _ := withByz.Equilibrium(seed, 200)
		costWith := withByz.SocialCost(secureB, withByz.HonestNodes())

		authority, _ := game.NewInoculation(16, 16, 1, 48)
		authority.SetByzantine(byzIDs...)
		secureA, _ := authority.Equilibrium(seed, 200)
		for _, liar := range authority.AuditByzantine(secureA) {
			authority.Disconnect(liar)
		}
		secureA2, _ := authority.Equilibrium(seed+1, 200)
		costAuth := authority.SocialCost(secureA2, authority.HonestNodes())

		p1, err := metrics.PriceOfMalice(costWith, costHonestOnly)
		if err != nil {
			b.Fatal(err)
		}
		p2, err := metrics.PriceOfMalice(costAuth, costHonestOnly)
		if err != nil {
			b.Fatal(err)
		}
		pomNoAuth, pomAuth = p1, p2
	}
	b.ReportMetric(pomNoAuth, "PoM-no-authority")
	b.ReportMetric(pomAuth, "PoM-authority")
}

// BenchmarkEAUDAuditing compares the per-round and batched (§5.3)
// disciplines' agreement overhead for 64 rounds.
func BenchmarkEAUDAuditing(b *testing.B) {
	const rounds = 64
	strategies := func(int, ga.Profile) ga.MixedProfile {
		return ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
	}
	run := func(mode ga.MixedConfig) float64 {
		s, err := ga.NewMixedSession(mode)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Play(rounds); err != nil {
			b.Fatal(err)
		}
		if err := s.CloseEpoch(); err != nil {
			b.Fatal(err)
		}
		return float64(s.Stats().Agreements)
	}
	var perRound, batched float64
	for i := 0; i < b.N; i++ {
		perRound = run(ga.MixedConfig{
			Elected: ga.MatchingPennies(), Strategies: strategies,
			Agents: []*ga.MixedAgent{nil, nil}, Scheme: ga.NewDisconnectScheme(2, 0),
			Mode: ga.AuditPerRound, Seed: uint64(i),
		})
		batched = run(ga.MixedConfig{
			Elected: ga.MatchingPennies(), Strategies: strategies,
			Agents: []*ga.MixedAgent{nil, nil}, Scheme: ga.NewDisconnectScheme(2, 0),
			Mode: ga.AuditBatched, EpochLen: 16, Seed: uint64(i),
		})
	}
	b.ReportMetric(perRound/rounds, "agreements/round(per-round)")
	b.ReportMetric(batched/rounds, "agreements/round(batched-T16)")
}

// BenchmarkEPUNPunishment compares how many rounds each scheme needs to
// neutralize the Fig. 1 manipulator.
func BenchmarkEPUNPunishment(b *testing.B) {
	strategies := func(int, ga.Profile) ga.MixedProfile {
		return ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
	}
	roundsTo := func(scheme ga.PunishmentScheme, seed uint64) float64 {
		manip := &ga.MixedAgent{Override: func(int, int) int { return ga.ManipulateAction }}
		s, err := ga.NewMixedSession(ga.MixedConfig{
			Elected: ga.MatchingPennies(), Actual: ga.MatchingPenniesManipulated(),
			Strategies: strategies, Agents: []*ga.MixedAgent{nil, manip},
			Scheme: scheme, Mode: ga.AuditPerRound, Seed: seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		for r := 1; r <= 200; r++ {
			if _, err := s.PlayRound(); err != nil {
				b.Fatal(err)
			}
			if s.Excluded(1) {
				return float64(r)
			}
		}
		return 201
	}
	var disc, rep, dep float64
	for i := 0; i < b.N; i++ {
		disc = roundsTo(punish.NewDisconnect(2, 0), uint64(i))
		rep = roundsTo(punish.NewReputation(2, 0.5, 0.2, 0), uint64(i))
		dep = roundsTo(punish.NewDeposit(2, 3, 1), uint64(i))
	}
	b.ReportMetric(disc, "rounds-to-exclude(disconnect)")
	b.ReportMetric(rep, "rounds-to-exclude(reputation)")
	b.ReportMetric(dep, "rounds-to-exclude(deposit)")
}

// BenchmarkEVOTEVoting compares naive and robust legislative elections
// under a strategic voter.
func BenchmarkEVOTEVoting(b *testing.B) {
	candidates := []ga.Candidate{
		{Game: ga.MatchingPennies(), Description: "mp"},
		{Game: ga.PrisonersDilemma(), Description: "pd"},
		{Game: ga.CoordinationGame(), Description: "coord"},
	}
	voters := []ga.Voter{
		{Prefs: []int{0, 1, 2}}, {Prefs: []int{0, 1, 2}},
		{Prefs: []int{1, 0, 2}}, {Prefs: []int{1, 0, 2}},
		{Prefs: []int{2, 1, 0}, Manipulative: true},
	}
	var naiveWinner, robustWinner int
	for i := 0; i < b.N; i++ {
		n, err := ga.NaiveElection(candidates, voters)
		if err != nil {
			b.Fatal(err)
		}
		r, err := ga.RobustElection(candidates, voters, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		naiveWinner, robustWinner = n.Winner, r.Winner
	}
	b.ReportMetric(float64(naiveWinner), "naive-winner")
	b.ReportMetric(float64(robustWinner), "robust-winner")
}

// BenchmarkEBAPAgreement measures one EIG agreement (n=7, f=2) including
// an equivocating adversary, reporting messages per agreement.
func BenchmarkEBAPAgreement(b *testing.B) {
	var msgs float64
	for i := 0; i < b.N; i++ {
		n, f := 7, 2
		procs := make([]sim.Process, n)
		raws := make([]*bap.Proc, n)
		for j := 0; j < n; j++ {
			p, err := bap.NewProc(j, n, f, "v")
			if err != nil {
				b.Fatal(err)
			}
			raws[j] = p
			procs[j] = p
		}
		nw, err := sim.NewNetwork(procs, nil)
		if err != nil {
			b.Fatal(err)
		}
		evil := prng.New(uint64(i))
		nw.SetByzantine(6, sim.EquivocateAdversary(func(to int, payload any) any {
			_ = evil.Uint64()
			return payload
		}))
		nw.Run(bap.Rounds(f) + 2)
		for j := 0; j < n-1; j++ {
			if !raws[j].Decided() {
				b.Fatal("no decision")
			}
		}
		msgs = float64(nw.Stats.MessagesSent)
	}
	b.ReportMetric(msgs, "messages/agreement")
}

// BenchmarkDistributedPlay measures full distributed plays (4 processors,
// f=1: clock sync + 4 interactive consistencies per play).
func BenchmarkDistributedPlay(b *testing.B) {
	g := ga.PrisonersDilemma()
	_ = g
	// A 4-player dominant-strategy game (one player per processor).
	g4 := benchNPD{n: 4}
	s, err := ga.NewDistributedSession(4, 1, g4, make([]*ga.Agent, 4), 7, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunPlays(1)
	}
	b.StopTimer()
	if err := s.ConsistentResults(3); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEEXTSampled measures the §1.1 sampled-audit extension: detection
// latency of the Fig. 1 manipulator at a 20% spot-check rate.
func BenchmarkEEXTSampled(b *testing.B) {
	strategies := func(int, ga.Profile) ga.MixedProfile {
		return ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
	}
	var latency float64
	for i := 0; i < b.N; i++ {
		manip := &ga.MixedAgent{Override: func(int, int) int { return ga.ManipulateAction }}
		s, err := ga.NewMixedSession(ga.MixedConfig{
			Elected: ga.MatchingPennies(), Actual: ga.MatchingPenniesManipulated(),
			Strategies: strategies, Agents: []*ga.MixedAgent{nil, manip},
			Scheme: ga.NewDisconnectScheme(2, 0), Mode: ga.AuditSampled,
			SampleProb: 0.2, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		latency = 201
		for r := 1; r <= 200; r++ {
			if _, err := s.PlayRound(); err != nil {
				b.Fatal(err)
			}
			if s.Excluded(1) {
				latency = float64(r)
				break
			}
		}
	}
	b.ReportMetric(latency, "rounds-to-catch(p=0.2)")
}

// BenchmarkAuthIC measures authenticated interactive consistency (n=5,
// f=2 — beyond the n>3f bound of EIG) including HMAC verification.
func BenchmarkAuthIC(b *testing.B) {
	const n, f = 5, 2
	dealer := auth.NewDealer(n, 1)
	for i := 0; i < b.N; i++ {
		procs := make([]sim.Process, n)
		raw := make([]*bap.AuthICProc, n)
		for j := 0; j < n; j++ {
			a, err := dealer.Authenticator(j)
			if err != nil {
				b.Fatal(err)
			}
			p, err := bap.NewAuthICProc(j, n, f, a, bap.Value(fmt.Sprintf("v%d", j)))
			if err != nil {
				b.Fatal(err)
			}
			raw[j] = p
			procs[j] = p
		}
		nw, err := sim.NewNetwork(procs, nil)
		if err != nil {
			b.Fatal(err)
		}
		nw.Run(bap.AuthICTotalPulses(f))
		for j := 0; j < n; j++ {
			if !raw[j].Done() {
				b.Fatal("authenticated IC did not terminate")
			}
		}
	}
}

// benchNPD is an n-player dominant-strategy game for distributed benches.
type benchNPD struct{ n int }

func (g benchNPD) NumPlayers() int    { return g.n }
func (g benchNPD) NumActions(int) int { return 2 }
func (g benchNPD) Cost(i int, p ga.Profile) float64 {
	coop := 0
	for _, a := range p {
		if a == 0 {
			coop++
		}
	}
	base := float64(g.n - coop)
	if p[i] == 0 {
		return base + 2
	}
	return base
}

var _ = fmt.Sprintf // keep fmt for ad-hoc debugging of benches
