package gameauthority_test

import (
	"context"
	"errors"
	"math"
	"testing"

	ga "gameauthority"
	"gameauthority/internal/sim"
)

func uniform2(int, ga.Profile) ga.MixedProfile {
	return ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
}

func manipulator() *ga.MixedAgent {
	return &ga.MixedAgent{Override: func(int, int) int { return ga.ManipulateAction }}
}

// TestNewOptionValidation exercises the error paths of the options API.
func TestNewOptionValidation(t *testing.T) {
	mp := ga.MatchingPennies()
	cases := []struct {
		name string
		g    ga.Game
		opts []ga.Option
	}{
		{"nil game", nil, nil},
		{"nil elected game for mixed", nil, []ga.Option{ga.WithStrategies(uniform2)}},
		{"unknown audit mode", mp, []ga.Option{
			ga.WithStrategies(uniform2), ga.WithAudit(ga.AuditMode(99))}},
		{"audit without punishment", mp, []ga.Option{
			ga.WithStrategies(uniform2), ga.WithAudit(ga.AuditPerRound)}},
		{"batched audit without epoch", mp, []ga.Option{
			ga.WithStrategies(uniform2),
			ga.WithPunishment(ga.NewDisconnectScheme(2, 0)),
			ga.WithAudit(ga.AuditBatched)}},
		{"mixed agents without strategies", mp, []ga.Option{
			ga.WithMixedAgents(nil, manipulator())}},
		{"pure agents on a mixed session", mp, []ga.Option{
			ga.WithStrategies(uniform2), ga.WithAgents(nil, nil)}},
		{"audit mode on a distributed session", mp, []ga.Option{
			ga.WithDistributed(2, 0, nil), ga.WithAudit(ga.AuditPerRound)}},
		{"distributed n <= 3f", mp, []ga.Option{ga.WithDistributed(4, 2, nil)}},
		{"distributed n = 3f boundary", mp, []ga.Option{ga.WithDistributed(3, 1, nil)}},
		{"game alongside RRA", mp, []ga.Option{ga.WithRRA(4, 2)}},
		{"RRA with zero resources", nil, []ga.Option{ga.WithRRA(4, 0)}},
		{"game alongside election", mp, []ga.Option{
			ga.WithElection([]ga.Candidate{{Game: mp}}, []ga.Voter{{Prefs: []int{0}}})}},
		{"agent count mismatch", mp, []ga.Option{ga.WithAgents(nil, nil, nil)}},
		{"actual game on a pure session", mp, []ga.Option{
			ga.WithActual(ga.MatchingPenniesManipulated())}},
		{"pulse budget on a pure session", mp, []ga.Option{ga.WithPulseBudget(100)}},
		{"actual game on an RRA session", nil, []ga.Option{
			ga.WithRRA(4, 2), ga.WithActual(mp)}},
		{"pure agents on an RRA session", nil, []ga.Option{
			ga.WithRRA(4, 2), ga.WithAgents(nil, nil, nil, nil)}},
		{"RRA byzantine on a distributed session", mp, []ga.Option{
			ga.WithDistributed(2, 0, nil),
			ga.WithRRAByzantine(0, ga.FixedChooser(0))}},
		{"RRA alongside distributed", mp, []ga.Option{
			ga.WithDistributed(2, 0, nil), ga.WithRRA(4, 2)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if s, err := ga.New(tc.g, tc.opts...); err == nil {
				t.Fatalf("New accepted invalid config, built %T", s)
			}
		})
	}
}

// TestEquivalencePure proves the deprecated constructor and the options
// API replay identical seeded results.
func TestEquivalencePure(t *testing.T) {
	const rounds = 12
	g := ga.PrisonersDilemma()
	stubborn := func() *ga.Agent {
		return &ga.Agent{Choose: func(int, ga.Profile) int { return 0 }}
	}

	old, err := ga.NewPureSession(g,
		[]*ga.Agent{ga.HonestPure(g, 0), stubborn()},
		ga.NewReputationScheme(2, 0.5, 0.2, 0.01), 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		if _, err := old.PlayRound(); err != nil {
			t.Fatal(err)
		}
	}

	s, err := ga.New(g,
		ga.WithAgents(nil, stubborn()),
		ga.WithPunishment(ga.NewReputationScheme(2, 0.5, 0.2, 0.01)),
		ga.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), rounds); err != nil {
		t.Fatal(err)
	}

	oldHist, newHist := old.History(), s.Results()
	if len(newHist) != rounds || len(oldHist) != rounds {
		t.Fatalf("history lengths: old=%d new=%d", len(oldHist), len(newHist))
	}
	for i := range oldHist {
		if !oldHist[i].Outcome.Equal(newHist[i].Outcome) {
			t.Fatalf("round %d: old outcome %v, new outcome %v", i, oldHist[i].Outcome, newHist[i].Outcome)
		}
		for p, c := range oldHist[i].Costs {
			if math.Abs(c-newHist[i].Costs[p]) > 1e-12 {
				t.Fatalf("round %d: costs diverge (%v vs %v)", i, oldHist[i].Costs, newHist[i].Costs)
			}
		}
	}
	st := s.Stats()
	for i := 0; i < 2; i++ {
		if math.Abs(st.CumulativeCost[i]-old.CumulativeCost(i)) > 1e-12 {
			t.Fatalf("cumulative cost %d: old %v new %v", i, old.CumulativeCost(i), st.CumulativeCost[i])
		}
		if st.Excluded[i] != old.Excluded(i) {
			t.Fatalf("excluded flag %d diverges", i)
		}
	}
}

// TestEquivalenceMixed proves seeded equivalence on the Fig. 1 scenario.
func TestEquivalenceMixed(t *testing.T) {
	const rounds = 300
	old, err := ga.NewMixedSession(ga.MixedConfig{
		Elected:    ga.MatchingPennies(),
		Actual:     ga.MatchingPenniesManipulated(),
		Strategies: uniform2,
		Agents:     []*ga.MixedAgent{nil, manipulator()},
		Scheme:     ga.NewDisconnectScheme(2, 0),
		Mode:       ga.AuditPerRound,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Play(rounds); err != nil {
		t.Fatal(err)
	}

	s, err := ga.New(ga.MatchingPennies(),
		ga.WithActual(ga.MatchingPenniesManipulated()),
		ga.WithStrategies(uniform2),
		ga.WithMixedAgents(nil, manipulator()),
		ga.WithPunishment(ga.NewDisconnectScheme(2, 0)),
		ga.WithAudit(ga.AuditPerRound),
		ga.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), rounds); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	for i := 0; i < 2; i++ {
		if math.Abs(st.CumulativeCost[i]-old.CumulativeCost(i)) > 1e-9 {
			t.Fatalf("agent %d cumulative cost: old %v new %v", i, old.CumulativeCost(i), st.CumulativeCost[i])
		}
	}
	if !st.Excluded[1] || !old.Excluded(1) {
		t.Fatal("manipulator not excluded on both paths")
	}
	if got := st.Protocol; got != old.Stats() {
		t.Fatalf("protocol stats diverge: old %+v new %+v", old.Stats(), got)
	}
}

// TestEquivalenceRRA proves seeded equivalence of the Theorem 5 harness.
func TestEquivalenceRRA(t *testing.T) {
	const (
		n, b, k = 8, 4, 400
	)
	old, err := ga.NewSupervisedRRA(n, b, 3, ga.NewDisconnectScheme(n, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Play(k); err != nil {
		t.Fatal(err)
	}

	s, err := ga.New(nil,
		ga.WithRRA(n, b),
		ga.WithPunishment(ga.NewDisconnectScheme(n, 0)),
		ga.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), k); err != nil {
		t.Fatal(err)
	}
	h := ga.AsRRA(s)
	if h == nil {
		t.Fatal("AsRRA returned nil for an RRA session")
	}
	if h.RRA().MaxLoad() != old.RRA().MaxLoad() {
		t.Fatalf("max load: old %d new %d", old.RRA().MaxLoad(), h.RRA().MaxLoad())
	}
	oldLoads, newLoads := old.RRA().Loads(), h.RRA().Loads()
	for i := range oldLoads {
		if oldLoads[i] != newLoads[i] {
			t.Fatalf("loads diverge: old %v new %v", oldLoads, newLoads)
		}
	}
}

// TestEquivalenceDistributed proves the distributed driver records the
// same plays through both entry points.
func TestEquivalenceDistributed(t *testing.T) {
	const plays = 4
	g := ga.PrisonersDilemma()

	old, err := ga.NewDistributedSession(2, 0, g, make([]*ga.Agent, 2), 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	old.RunPlays(plays)
	oldRes := old.Procs[0].Results()

	s, err := ga.New(g, ga.WithDistributed(2, 0, nil), ga.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), plays); err != nil {
		t.Fatal(err)
	}
	newRes := s.Results()
	if len(newRes) != plays {
		t.Fatalf("completed %d plays, want %d", len(newRes), plays)
	}
	if ga.AsDistributed(s) == nil {
		t.Fatal("AsDistributed returned nil for a distributed session")
	}
	for i := 0; i < len(oldRes) && i < len(newRes); i++ {
		if !oldRes[i].Outcome.Equal(newRes[i].Outcome) || oldRes[i].Pulse != newRes[i].Pulse {
			t.Fatalf("play %d diverges: old %v@%d new %v@%d",
				i, oldRes[i].Outcome, oldRes[i].Pulse, newRes[i].Outcome, newRes[i].Pulse)
		}
	}
}

// TestDistributedFoulStats checks that distributed convictions reach both
// the per-play results and the aggregate stats.
func TestDistributedFoulStats(t *testing.T) {
	const n, f = 4, 1
	g, err := ga.PublicGoods(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	behaviors := make([]*ga.Agent, n)
	behaviors[2] = &ga.Agent{Choose: func(int, ga.Profile) int { return 99 }}
	byz := map[int]ga.Adversary{2: sim.PassthroughAdversary()}
	s, err := ga.New(g,
		ga.WithDistributed(n, f, byz),
		ga.WithAgents(behaviors...),
		ga.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	res := s.Results()
	if len(res[0].Convicted) == 0 {
		t.Fatalf("cheater not convicted on play 0: %+v", res[0])
	}
	if got := s.Stats().Fouls; got == 0 {
		t.Fatal("Stats().Fouls is zero despite convictions in Results()")
	}
}

// TestObserverStream checks the event stream end to end: sticky election
// events, plays, verdicts, and convictions.
func TestObserverStream(t *testing.T) {
	const rounds = 8
	stubborn := &ga.Agent{Choose: func(int, ga.Profile) int { return 0 }}
	s, err := ga.New(nil,
		ga.WithElection(
			[]ga.Candidate{
				{Game: ga.PrisonersDilemma(), Description: "pd"},
				{Game: ga.CoordinationGame(), Description: "coord"},
			},
			[]ga.Voter{{Prefs: []int{0, 1}}, {Prefs: []int{0, 1}}, {Prefs: []int{1, 0}}},
		),
		ga.WithAgents(nil, stubborn),
		ga.WithPunishment(ga.NewDisconnectScheme(2, 2)),
		ga.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}

	counts := make(map[ga.EventKind]int)
	// Subscribing after New must still deliver the sticky election event.
	unsubscribe := s.Subscribe(ga.ObserverFunc(func(e ga.Event) { counts[e.Kind]++ }))
	if counts[ga.EventElection] != 1 {
		t.Fatalf("election events on subscribe = %d, want 1", counts[ga.EventElection])
	}
	if _, err := s.Run(context.Background(), rounds); err != nil {
		t.Fatal(err)
	}
	unsubscribe()
	if counts[ga.EventPlay] != rounds {
		t.Fatalf("play events = %d, want %d", counts[ga.EventPlay], rounds)
	}
	if counts[ga.EventVerdict] == 0 {
		t.Fatal("no verdict events for a stubborn cheater")
	}
	if counts[ga.EventConviction] == 0 {
		t.Fatal("no conviction events for a repeat offender")
	}

	// After unsubscribe no further events arrive.
	before := counts[ga.EventPlay]
	if _, err := s.Play(context.Background()); err != nil {
		t.Fatal(err)
	}
	if counts[ga.EventPlay] != before {
		t.Fatal("events delivered after unsubscribe")
	}
}

// TestEventsChannel checks the buffered-channel adapter.
func TestEventsChannel(t *testing.T) {
	s, err := ga.New(ga.PrisonersDilemma(), ga.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	events, cancel := ga.Events(s, 64)
	if _, err := s.Run(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	cancel()
	cancel() // idempotent
	plays := 0
	for e := range events {
		if e.Kind == ga.EventPlay {
			plays++
		}
	}
	if plays != 5 {
		t.Fatalf("channel delivered %d play events, want 5", plays)
	}
}

// TestPlayContextCancellation checks ctx plumbing on every driver.
func TestPlayContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	pure, err := ga.New(ga.PrisonersDilemma(), ga.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pure.Play(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pure Play with cancelled ctx: %v", err)
	}

	dist, err := ga.New(ga.PrisonersDilemma(), ga.WithDistributed(2, 0, nil), ga.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dist.Play(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("distributed Play with cancelled ctx: %v", err)
	}
}

// TestDistributedPulseBudget checks ErrPulseBudget is reported and
// recoverable.
func TestDistributedPulseBudget(t *testing.T) {
	s, err := ga.New(ga.PrisonersDilemma(),
		ga.WithDistributed(2, 0, nil),
		ga.WithPulseBudget(2), // far below one protocol period
		ga.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Play(ctx); !errors.Is(err, ga.ErrPulseBudget) {
		t.Fatalf("expected ErrPulseBudget, got %v", err)
	}
	// Repeated plays keep stepping and eventually complete the play.
	for i := 0; i < 50; i++ {
		if _, err := s.Play(ctx); err == nil {
			return
		} else if !errors.Is(err, ga.ErrPulseBudget) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	t.Fatal("play never completed despite repeated budget-limited attempts")
}
