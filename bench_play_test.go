// Per-driver play benchmarks: the tracked performance baseline of the
// middleware hot path. `make bench` runs exactly these (with -benchmem)
// and persists the results to BENCH_PR2.json so future changes have a
// trajectory to beat; see DESIGN.md §"Performance model" for how to read
// the artifact. The experiment-level benchmarks live in bench_test.go.
package gameauthority_test

import (
	"context"
	"runtime"
	"testing"

	ga "gameauthority"
)

// warmPlays bounds each bench session's history ring; running one full
// ring of plays before the timer starts puts every driver in its
// steady state (scratch sized, ring slots allocated).
const warmPlays = 64

func warmSession(b *testing.B, s ga.Session) {
	b.Helper()
	if _, err := s.Run(context.Background(), warmPlays); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPlayPure measures one fully audited pure-strategy play
// (commit → reveal → SHA-256 audit → best-response check → publish) on a
// bounded-history session: the allocation-free hot path.
func BenchmarkPlayPure(b *testing.B) {
	ctx := context.Background()
	s, err := ga.New(ga.PrisonersDilemma(), ga.WithSeed(1),
		ga.WithPunishment(ga.NewDisconnectScheme(2, 0)),
		ga.WithHistoryLimit(warmPlays))
	if err != nil {
		b.Fatal(err)
	}
	warmSession(b, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Play(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlayMixed measures one mixed-strategy play under the per-round
// audit discipline (seed commitment, PRG replay audit, agreement
// accounting).
func BenchmarkPlayMixed(b *testing.B) {
	ctx := context.Background()
	strategies := ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
	s, err := ga.New(ga.MatchingPennies(),
		ga.WithStrategies(func(int, ga.Profile) ga.MixedProfile { return strategies }),
		ga.WithPunishment(ga.NewDisconnectScheme(2, 0)),
		ga.WithAudit(ga.AuditPerRound),
		ga.WithSeed(1),
		ga.WithHistoryLimit(warmPlays))
	if err != nil {
		b.Fatal(err)
	}
	warmSession(b, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Play(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlayRRA measures one supervised resource-allocation play
// (water-filling equilibrium, committed-seed sampling, per-round audit)
// at n=8 agents over b=4 resources.
func BenchmarkPlayRRA(b *testing.B) {
	ctx := context.Background()
	s, err := ga.New(nil, ga.WithRRA(8, 4),
		ga.WithPunishment(ga.NewDisconnectScheme(8, 0)),
		ga.WithSeed(1),
		ga.WithHistoryLimit(warmPlays))
	if err != nil {
		b.Fatal(err)
	}
	warmSession(b, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Play(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDistributed measures one full distributed play — clock sync plus
// four interactive consistencies over the synchronous network — with the
// given pulse-engine width (1 = lockstep, 0 = auto-parallel).
func benchDistributed(b *testing.B, workers int) {
	ctx := context.Background()
	g4, err := ga.PublicGoods(4, 2)
	if err != nil {
		b.Fatal(err)
	}
	s, err := ga.New(g4, ga.WithDistributed(4, 1, nil),
		ga.WithPulseWorkers(workers),
		ga.WithSeed(1),
		ga.WithHistoryLimit(warmPlays))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	warmSession(b, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Play(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkPlayDistributedLockstep is the single-threaded reference
// engine.
func BenchmarkPlayDistributedLockstep(b *testing.B) { benchDistributed(b, 1) }

// BenchmarkPlayDistributedParallel runs the worker-pool pulse engine at
// the host's core count. On a multi-core host this is the wall-clock win
// the parallel engine buys; on a single core it shows the pool's overhead
// floor (compare the gomaxprocs metric when reading results).
func BenchmarkPlayDistributedParallel(b *testing.B) { benchDistributed(b, 0) }
