package gameauthority_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	ga "gameauthority"
	"gameauthority/internal/core"
)

// playnScenario is one cell of the PlayN equivalence matrix: a session
// spec, a sequential warmup (so the batch can start mid-punishment and
// post-conviction, not just from round zero), and the batch size.
type playnScenario struct {
	name   string
	spec   ga.CreateSessionRequest
	warmup int
	batch  int
}

// playnScenarios sweeps every catalog game across all four drivers. Pure,
// mixed, and distributed sessions host each catalog family directly; the
// RRA driver builds its own game, so it varies size per family index
// instead. Deviants and punishment rotate through the mix so the batch
// window crosses fouls, convictions, and active punishment in several
// cells.
func playnScenarios(t *testing.T) []playnScenario {
	t.Helper()
	deviants := []string{"", "freerider", "", "commitment-cheat", ""}
	var out []playnScenario
	for i, entry := range ga.Catalog() {
		players := entry.Players(4)
		pure := ga.CreateSessionRequest{
			Game:       entry.Name,
			Players:    players,
			Seed:       uint64(100 + i),
			Punishment: &ga.PunishmentSpec{Scheme: []string{"disconnect", "reputation"}[i%2]},
		}
		if d := deviants[i%len(deviants)]; d != "" {
			pure.Deviant = &ga.DeviantSpec{Player: 0, Strategy: d}
		}
		out = append(out, playnScenario{
			name: "pure-" + entry.Name, spec: pure, warmup: 4, batch: 10,
		})

		mixed := ga.CreateSessionRequest{
			Game: entry.Name, Players: players, Kind: "mixed", Audit: "per-round",
			Seed:       uint64(200 + i),
			Punishment: &ga.PunishmentSpec{Scheme: "disconnect"},
		}
		if i%2 == 1 {
			mixed.Deviant = &ga.DeviantSpec{Player: 1, Strategy: "distribution-skewer"}
		}
		out = append(out, playnScenario{
			name: "mixed-" + entry.Name, spec: mixed, warmup: 4, batch: 10,
		})

		dist := ga.CreateSessionRequest{
			Game: entry.Name, Players: players, Seed: uint64(300 + i),
			PulseBudget:  1000 * ga.PulsesPerPlay(1),
			PulseWorkers: 1, // lockstep keeps the heavy driver cheap and pinned
		}
		dist.Distributed = &struct {
			N int `json:"n"`
			F int `json:"f"`
		}{N: players, F: (players - 1) / 3}
		out = append(out, playnScenario{
			name: "dist-" + entry.Name, spec: dist, warmup: 1, batch: 3,
		})

		rra := ga.CreateSessionRequest{
			Seed:       uint64(400 + i),
			Punishment: &ga.PunishmentSpec{Scheme: "disconnect"},
		}
		rra.RRA = &struct {
			Agents    int `json:"agents"`
			Resources int `json:"resources"`
		}{Agents: 4 + i%4, Resources: 2 + i%3}
		out = append(out, playnScenario{
			name: fmt.Sprintf("rra-%s", entry.Name), spec: rra, warmup: 4, batch: 10,
		})
	}
	return out
}

// playnStores builds a fresh store per invocation for each backend the
// equivalence property must hold on.
func playnStores(t *testing.T) map[string]func() ga.Store {
	t.Helper()
	return map[string]func() ga.Store{
		"mem": func() ga.Store { return ga.NewMemStore() },
		"file": func() ga.Store {
			st, err := ga.NewFileStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return st
		},
	}
}

// runSequential warms the session and then plays batch rounds one Play at
// a time, returning the per-round result hashes and the final snapshot
// digest.
func runSequential(t *testing.T, h *ga.HostedSession, warmup, batch int) ([]string, string) {
	t.Helper()
	ctx := context.Background()
	if warmup > 0 {
		if _, err := h.Run(ctx, warmup); err != nil {
			t.Fatal(err)
		}
	}
	hashes := make([]string, 0, batch)
	for i := 0; i < batch; i++ {
		res, err := h.Play(ctx)
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, core.HashResult(res))
	}
	return hashes, h.Snapshot().Digest
}

// runBatched warms the session identically and then plays the same rounds
// through one PlayN call, hashing each round in the sink (before the next
// round can reuse the scratch buffers the result aliases).
func runBatched(t *testing.T, h *ga.HostedSession, warmup, batch int) ([]string, string) {
	t.Helper()
	ctx := context.Background()
	if warmup > 0 {
		if _, err := h.Run(ctx, warmup); err != nil {
			t.Fatal(err)
		}
	}
	hashes := make([]string, 0, batch)
	last, err := h.PlayN(ctx, batch, func(res ga.RoundResult) error {
		hashes = append(hashes, core.HashResult(res))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := core.HashResult(last), hashes[len(hashes)-1]; got != want {
		t.Fatalf("PlayN returned result hash %s, last sink hash %s", got, want)
	}
	return hashes, h.Snapshot().Digest
}

// TestPlayNEquivalence is the batched-play correctness property: for
// every catalog game, all four drivers, and both store backends, PlayN(n)
// after a sequential warmup is digest-identical — per-round result hash
// and final snapshot digest — to n sequential Play calls at the same
// seed. The warmup puts several cells mid-punishment and post-conviction
// when the batch starts, so the batch path is proven across judicial
// state, not just clean rounds.
func TestPlayNEquivalence(t *testing.T) {
	scenarios := playnScenarios(t)
	stores := playnStores(t)
	for _, sc := range scenarios {
		for storeName, newStore := range stores {
			sc := sc
			t.Run(sc.name+"/"+storeName, func(t *testing.T) {
				t.Parallel()
				seqHost := ga.NewAuthority(ga.WithStore(newStore()))
				defer seqHost.Close()
				seq, err := seqHost.CreateFromSpec(sc.spec)
				if err != nil {
					t.Fatal(err)
				}
				wantHashes, wantDigest := runSequential(t, seq, sc.warmup, sc.batch)

				batHost := ga.NewAuthority(ga.WithStore(newStore()))
				defer batHost.Close()
				bat, err := batHost.CreateFromSpec(sc.spec)
				if err != nil {
					t.Fatal(err)
				}
				gotHashes, gotDigest := runBatched(t, bat, sc.warmup, sc.batch)

				if len(gotHashes) != len(wantHashes) {
					t.Fatalf("PlayN yielded %d rounds, sequential %d", len(gotHashes), len(wantHashes))
				}
				for i := range wantHashes {
					if gotHashes[i] != wantHashes[i] {
						t.Fatalf("round %d: PlayN hash %s, sequential %s", sc.warmup+i, gotHashes[i], wantHashes[i])
					}
				}
				if gotDigest != wantDigest {
					t.Fatalf("final digest diverged: PlayN %s, sequential %s", gotDigest, wantDigest)
				}
			})
		}
	}
}

// TestPlayNValidation pins the PlayN contract edges: a non-positive batch
// is ErrConfig, a nil sink is allowed, and a sink error aborts the batch
// after the offending round while keeping the completed prefix journaled
// and the session consistent.
func TestPlayNValidation(t *testing.T) {
	ctx := context.Background()
	a := ga.NewAuthority(ga.WithStore(ga.NewMemStore()))
	defer a.Close()
	h, err := a.CreateFromSpec(ga.CreateSessionRequest{Game: "pd", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.PlayN(ctx, 0, nil); !errors.Is(err, ga.ErrConfig) {
		t.Fatalf("PlayN(0) error = %v, want ErrConfig", err)
	}
	if _, err := h.PlayN(ctx, -3, nil); !errors.Is(err, ga.ErrConfig) {
		t.Fatalf("PlayN(-3) error = %v, want ErrConfig", err)
	}
	if _, err := h.PlayN(ctx, 4, nil); err != nil {
		t.Fatalf("PlayN with nil sink: %v", err)
	}
	boom := errors.New("sink says stop")
	seen := 0
	_, err = h.PlayN(ctx, 5, func(ga.RoundResult) error {
		seen++
		if seen == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("sink error not propagated: %v", err)
	}
	if seen != 2 {
		t.Fatalf("sink ran %d times after aborting at 2", seen)
	}
	// The two completed rounds stayed: both in the live session and in
	// the journal (the batch record holds exactly the completed prefix).
	if got := h.Stats().Rounds; got != 6 {
		t.Fatalf("session at round %d, want 6 (4 + 2 completed)", got)
	}
}
