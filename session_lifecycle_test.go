package gameauthority_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	ga "gameauthority"
)

// TestAuthorityCloseSyncsStoreAndStaysIdempotent pins the durable close
// contract: Authority.Close fsyncs and closes the store before
// returning, a second Close is a clean no-op, and host shutdown does NOT
// journal session close records — only an explicit HostedSession.Close
// marks a session durably closed. After a graceful restart the
// explicitly-closed session recovers closed, the rest recover playable.
func TestAuthorityCloseSyncsStoreAndStaysIdempotent(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st, err := ga.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := ga.NewAuthority(ga.WithStore(st))
	sessions := make(map[string]*ga.HostedSession)
	for i, game := range []string{"pd", "congestion"} {
		h, err := a.CreateFromSpec(ga.CreateSessionRequest{
			ID: []string{"close-a", "close-b"}[i], Game: game, Players: 3, Seed: uint64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Run(ctx, 4); err != nil {
			t.Fatal(err)
		}
		sessions[h.ID()] = h
	}
	// close-a ends deliberately (journals a close record); close-b stays
	// live through the shutdown.
	if err := sessions["close-a"].Close(); err != nil {
		t.Fatal(err)
	}

	if err := a.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	// The store is fsynced and closed before Close returns.
	if err := st.Sync(); !errors.Is(err, ga.ErrStoreClosed) {
		t.Fatalf("store still open after Authority.Close: err = %v", err)
	}
	// A second (and third) Close stays idempotent: no double-close error
	// from the store, no panic from re-closing sessions.
	if err := a.Close(); err != nil {
		t.Fatalf("second close not idempotent: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("third close: %v", err)
	}

	// Everything journaled before Close is on disk: a fresh store over the
	// same directory recovers both sessions, closed, at their final round.
	st2, err := ga.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := ga.NewAuthority(ga.WithStore(st2))
	defer b.Close()
	report, err := b.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Sessions != 2 || len(report.Failed) > 0 {
		t.Fatalf("recovery after graceful close: %+v", report)
	}
	for _, id := range []string{"close-a", "close-b"} {
		h, err := b.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := h.Stats().Rounds; got != 4 {
			t.Fatalf("%s recovered at round %d, want 4", id, got)
		}
	}
	// The explicitly-closed session recovered closed (its ledger survives,
	// no further plays run)...
	ha, _ := b.Get("close-a")
	if _, err := ha.Play(ctx); !errors.Is(err, ga.ErrClosed) {
		t.Fatalf("close-a: post-recovery Play on closed session = %v, want ErrClosed", err)
	}
	// ...while the session that merely lived through the shutdown is
	// playable: a restart is not a session close.
	hb, _ := b.Get("close-b")
	if _, err := hb.Play(ctx); err != nil {
		t.Fatalf("close-b bricked by graceful shutdown: %v", err)
	}
}

// TestCreateRemoveRaceNeverLeaksLedger hammers the window where a
// CreateFromSpec is still journaling its spec when a Remove lands: no
// interleaving may leak a ledger for an unhosted session (it would
// resurrect at the next recovery) or strip a hosted session's ledger.
func TestCreateRemoveRaceNeverLeaksLedger(t *testing.T) {
	st := ga.NewMemStore()
	a := ga.NewAuthority(ga.WithStore(st))
	defer a.Close()
	for i := 0; i < 300; i++ {
		id := fmt.Sprintf("race-%d", i)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, _ = a.CreateFromSpec(ga.CreateSessionRequest{ID: id, Game: "pd", Seed: uint64(i) + 1})
		}()
		go func() {
			defer wg.Done()
			_ = a.Remove(id)
		}()
		wg.Wait()
		hosted := false
		if _, err := a.Get(id); err == nil {
			hosted = true
		}
		_, journaled, err := st.LoadSession(id)
		if err != nil {
			t.Fatal(err)
		}
		if hosted != journaled {
			t.Fatalf("iteration %d: hosted=%v journaled=%v — ledger %s", i, hosted, journaled,
				map[bool]string{true: "leaked for a removed session", false: "lost for a live session"}[journaled])
		}
	}
}

// TestRemoveDeletesDamagedLedger: DELETE is the one API remedy for a
// ledger recovery refuses (mid-file WAL corruption), so the load failure
// that blocks recovery must not also block the delete.
func TestRemoveDeletesDamagedLedger(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st, err := ga.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := ga.NewAuthority(ga.WithStore(st))
	h, err := a.CreateFromSpec(ga.CreateSessionRequest{ID: "damaged", Game: "pd", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(ctx, 3); err != nil {
		t.Fatal(err)
	}
	a.DetachStore() // crash: the registry forgets, the ledger stays

	// Corrupt the first WAL record so every load refuses the ledger.
	wal := filepath.Join(dir, "sessions", "damaged.wal")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	data[bytes.IndexByte(data, '{')+5] ^= 0xFF
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}

	b := ga.NewAuthority(ga.WithStore(st))
	defer b.Close()
	if _, err := b.GetOrRecover(ctx, "damaged"); err == nil {
		t.Fatal("damaged ledger recovered without error")
	}
	if err := b.Remove("damaged"); err != nil {
		t.Fatalf("remove of a damaged ledger must scrub it, got %v", err)
	}
	if _, ok, lerr := st.LoadSession("damaged"); lerr != nil || ok {
		t.Fatalf("ledger not scrubbed: ok=%v err=%v", ok, lerr)
	}
	// The id is usable again.
	if _, err := b.CreateFromSpec(ga.CreateSessionRequest{ID: "damaged", Game: "pd", Seed: 6}); err != nil {
		t.Fatalf("recreate after scrub: %v", err)
	}
}

// TestRemoveUnknownAfterCloseIsNotFound: DELETE of an id that was never
// hosted must stay a not-found after Authority.Close — the closed store
// cannot be consulted, but that is not a durability failure (503) for a
// session that does not exist.
func TestRemoveUnknownAfterCloseIsNotFound(t *testing.T) {
	a := ga.NewAuthority(ga.WithStore(ga.NewMemStore()))
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	err := a.Remove("never-existed")
	if !errors.Is(err, ga.ErrSessionNotFound) {
		t.Fatalf("remove unknown id after close: err = %v, want ErrSessionNotFound", err)
	}
	if errors.Is(err, ga.ErrDurability) {
		t.Fatalf("remove unknown id after close reported a durability failure: %v", err)
	}
}

// TestAuthorityPlayAfterCloseKeepsErrClosed: plays racing an
// Authority.Close must surface ErrClosed (from the session), never a
// store error or a panic, even on a durable host.
func TestAuthorityPlayAfterCloseKeepsErrClosed(t *testing.T) {
	ctx := context.Background()
	a := ga.NewAuthority(ga.WithStore(ga.NewMemStore()))
	h, err := a.CreateFromSpec(ga.CreateSessionRequest{ID: "race", Game: "pd", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := h.Play(ctx); err != nil && !errors.Is(err, ga.ErrClosed) {
					t.Errorf("play: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := a.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	wg.Wait()
	if _, err := h.Play(ctx); !errors.Is(err, ga.ErrClosed) {
		t.Fatalf("after close, Play = %v, want ErrClosed", err)
	}
}

// lifecycleSessions builds one session per driver for the close-semantics
// tests.
func lifecycleSessions(t *testing.T) map[string]ga.Session {
	t.Helper()
	out := make(map[string]ga.Session)

	pure, err := ga.New(ga.PrisonersDilemma(), ga.WithSeed(1),
		ga.WithPunishment(ga.NewDisconnectScheme(2, 0)))
	if err != nil {
		t.Fatal(err)
	}
	out["pure"] = pure

	g := ga.MatchingPennies()
	mixed, err := ga.New(g, ga.WithSeed(1),
		ga.WithStrategies(func(int, ga.Profile) ga.MixedProfile {
			return ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
		}),
		ga.WithAudit(ga.AuditBatched, ga.EpochLen(4)),
		ga.WithPunishment(ga.NewDisconnectScheme(2, 0)))
	if err != nil {
		t.Fatal(err)
	}
	out["mixed"] = mixed

	rra, err := ga.New(nil, ga.WithSeed(1), ga.WithRRA(4, 2),
		ga.WithPunishment(ga.NewDisconnectScheme(4, 0)))
	if err != nil {
		t.Fatal(err)
	}
	out["rra"] = rra

	dist, err := ga.New(ga.PrisonersDilemma(), ga.WithSeed(1),
		ga.WithDistributed(2, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	out["distributed"] = dist

	return out
}

// TestSessionCloseLifecycle asserts, for every driver: Close is
// idempotent, Play and Run after Close fail cleanly with ErrClosed (no
// panic, no deadlock), and Results/ResultAt/Stats still answer on the
// closed session.
func TestSessionCloseLifecycle(t *testing.T) {
	ctx := context.Background()
	for name, s := range lifecycleSessions(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Run(ctx, 3); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("first close: %v", err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("second close not idempotent: %v", err)
			}
			if _, err := s.Play(ctx); !errors.Is(err, ga.ErrClosed) {
				t.Fatalf("post-close Play: err = %v, want ErrClosed", err)
			}
			if _, err := s.Run(ctx, 2); !errors.Is(err, ga.ErrClosed) {
				t.Fatalf("post-close Run: err = %v, want ErrClosed", err)
			}
			if got := len(s.Results()); got != 3 {
				t.Fatalf("post-close Results: %d plays, want 3", got)
			}
			if _, ok := s.ResultAt(2); !ok {
				t.Fatalf("post-close ResultAt(2) lost the play")
			}
			st := s.Stats()
			if st.Rounds != 3 {
				t.Fatalf("post-close Stats.Rounds = %d, want 3", st.Rounds)
			}
			// A third close on the already-terminal session stays nil.
			if err := s.Close(); err != nil {
				t.Fatalf("third close: %v", err)
			}
		})
	}
}

// TestSessionCloseConcurrent hammers Play/Close/Stats concurrently: every
// play must either succeed or fail with ErrClosed — never panic or wedge.
func TestSessionCloseConcurrent(t *testing.T) {
	ctx := context.Background()
	for name, s := range lifecycleSessions(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 20; i++ {
						if _, err := s.Play(ctx); err != nil && !errors.Is(err, ga.ErrClosed) {
							t.Errorf("play: %v", err)
							return
						}
						_ = s.Stats()
					}
				}()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := s.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
			}()
			wg.Wait()
			if _, err := s.Play(ctx); !errors.Is(err, ga.ErrClosed) {
				t.Fatalf("after concurrent close, Play = %v, want ErrClosed", err)
			}
		})
	}
}

// TestMixedCloseAuditsTrailingEpoch pins the batched-audit close-out: the
// trailing partial epoch is audited exactly once, and the post-close
// session still reports it.
func TestMixedCloseAuditsTrailingEpoch(t *testing.T) {
	ctx := context.Background()
	g := ga.MatchingPennies()
	cheat := &ga.MixedAgent{Withhold: func(int) bool { return true }}
	s, err := ga.New(g, ga.WithSeed(3),
		ga.WithStrategies(func(int, ga.Profile) ga.MixedProfile {
			return ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
		}),
		ga.WithMixedAgents(cheat, nil),
		ga.WithAudit(ga.AuditBatched, ga.EpochLen(8)),
		ga.WithPunishment(ga.NewDisconnectScheme(2, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx, 3); err != nil { // partial epoch: 3 of 8
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Fouls == 0 || !st.Excluded[0] {
		t.Fatalf("trailing epoch not audited on close: fouls=%d excluded=%v", st.Fouls, st.Excluded)
	}
	if _, err := s.Play(ctx); !errors.Is(err, ga.ErrClosed) {
		t.Fatalf("post-close Play = %v, want ErrClosed", err)
	}
}
