package gameauthority_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	ga "gameauthority"
)

// lifecycleSessions builds one session per driver for the close-semantics
// tests.
func lifecycleSessions(t *testing.T) map[string]ga.Session {
	t.Helper()
	out := make(map[string]ga.Session)

	pure, err := ga.New(ga.PrisonersDilemma(), ga.WithSeed(1),
		ga.WithPunishment(ga.NewDisconnectScheme(2, 0)))
	if err != nil {
		t.Fatal(err)
	}
	out["pure"] = pure

	g := ga.MatchingPennies()
	mixed, err := ga.New(g, ga.WithSeed(1),
		ga.WithStrategies(func(int, ga.Profile) ga.MixedProfile {
			return ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
		}),
		ga.WithAudit(ga.AuditBatched, ga.EpochLen(4)),
		ga.WithPunishment(ga.NewDisconnectScheme(2, 0)))
	if err != nil {
		t.Fatal(err)
	}
	out["mixed"] = mixed

	rra, err := ga.New(nil, ga.WithSeed(1), ga.WithRRA(4, 2),
		ga.WithPunishment(ga.NewDisconnectScheme(4, 0)))
	if err != nil {
		t.Fatal(err)
	}
	out["rra"] = rra

	dist, err := ga.New(ga.PrisonersDilemma(), ga.WithSeed(1),
		ga.WithDistributed(2, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	out["distributed"] = dist

	return out
}

// TestSessionCloseLifecycle asserts, for every driver: Close is
// idempotent, Play and Run after Close fail cleanly with ErrClosed (no
// panic, no deadlock), and Results/ResultAt/Stats still answer on the
// closed session.
func TestSessionCloseLifecycle(t *testing.T) {
	ctx := context.Background()
	for name, s := range lifecycleSessions(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Run(ctx, 3); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("first close: %v", err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("second close not idempotent: %v", err)
			}
			if _, err := s.Play(ctx); !errors.Is(err, ga.ErrClosed) {
				t.Fatalf("post-close Play: err = %v, want ErrClosed", err)
			}
			if _, err := s.Run(ctx, 2); !errors.Is(err, ga.ErrClosed) {
				t.Fatalf("post-close Run: err = %v, want ErrClosed", err)
			}
			if got := len(s.Results()); got != 3 {
				t.Fatalf("post-close Results: %d plays, want 3", got)
			}
			if _, ok := s.ResultAt(2); !ok {
				t.Fatalf("post-close ResultAt(2) lost the play")
			}
			st := s.Stats()
			if st.Rounds != 3 {
				t.Fatalf("post-close Stats.Rounds = %d, want 3", st.Rounds)
			}
			// A third close on the already-terminal session stays nil.
			if err := s.Close(); err != nil {
				t.Fatalf("third close: %v", err)
			}
		})
	}
}

// TestSessionCloseConcurrent hammers Play/Close/Stats concurrently: every
// play must either succeed or fail with ErrClosed — never panic or wedge.
func TestSessionCloseConcurrent(t *testing.T) {
	ctx := context.Background()
	for name, s := range lifecycleSessions(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 20; i++ {
						if _, err := s.Play(ctx); err != nil && !errors.Is(err, ga.ErrClosed) {
							t.Errorf("play: %v", err)
							return
						}
						_ = s.Stats()
					}
				}()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := s.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
			}()
			wg.Wait()
			if _, err := s.Play(ctx); !errors.Is(err, ga.ErrClosed) {
				t.Fatalf("after concurrent close, Play = %v, want ErrClosed", err)
			}
		})
	}
}

// TestMixedCloseAuditsTrailingEpoch pins the batched-audit close-out: the
// trailing partial epoch is audited exactly once, and the post-close
// session still reports it.
func TestMixedCloseAuditsTrailingEpoch(t *testing.T) {
	ctx := context.Background()
	g := ga.MatchingPennies()
	cheat := &ga.MixedAgent{Withhold: func(int) bool { return true }}
	s, err := ga.New(g, ga.WithSeed(3),
		ga.WithStrategies(func(int, ga.Profile) ga.MixedProfile {
			return ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
		}),
		ga.WithMixedAgents(cheat, nil),
		ga.WithAudit(ga.AuditBatched, ga.EpochLen(8)),
		ga.WithPunishment(ga.NewDisconnectScheme(2, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx, 3); err != nil { // partial epoch: 3 of 8
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Fouls == 0 || !st.Excluded[0] {
		t.Fatalf("trailing epoch not audited on close: fouls=%d excluded=%v", st.Fouls, st.Excluded)
	}
	if _, err := s.Play(ctx); !errors.Is(err, ga.ErrClosed) {
		t.Fatalf("post-close Play = %v, want ErrClosed", err)
	}
}
