package gameauthority

import (
	"gameauthority/internal/faults"
)

// FaultPlan is a seeded, deterministic fault-injection schedule (see
// internal/faults). Attach one to an authority with WithFaultPlan to
// chaos-test the durable write paths, or wrap client connections with
// its Conn decorator for network chaos.
type FaultPlan = faults.Plan

// FaultConfig sets a FaultPlan's per-operation fault rates.
type FaultConfig = faults.Config

// ErrFaultInjected is the sentinel wrapped by every injected fault, so
// harnesses can tell scheduled chaos from real failures.
var ErrFaultInjected = faults.ErrInjected

// NewFaultPlan builds a fault plan from cfg.
func NewFaultPlan(cfg FaultConfig) *FaultPlan { return faults.NewPlan(cfg) }

// DiskFaultConfig is the standard disk-chaos mix at one base rate.
func DiskFaultConfig(seed uint64, rate float64) FaultConfig { return faults.DiskConfig(seed, rate) }

// NetFaultConfig is the standard network-chaos mix at one base rate.
func NetFaultConfig(seed uint64, rate float64) FaultConfig { return faults.NetConfig(seed, rate) }

// WithFaultPlan arms deterministic disk chaos on the authority: the
// durable store (WithStore) is wrapped so its write paths fail, tear,
// and stall on the plan's seeded schedule, and every injected fault is
// counted on the authority's metrics (gameauthority_faults_injected_total).
// Order-independent with WithStore — the wrap happens after all options
// apply. A nil plan is a no-op.
func WithFaultPlan(plan *FaultPlan) AuthorityOption {
	return func(a *Authority) { a.faultPlan = plan }
}
