package gameauthority_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	ga "gameauthority"
	"gameauthority/internal/core"
)

// crashSpecs builds the ≥ 200-session fleet for the crash-recovery
// acceptance test: every driver represented, punishment and deviants in
// the mix, rounds varying per session so WAL tails of every length are
// replayed.
func crashSpecs() ([]ga.CreateSessionRequest, []int) {
	var specs []ga.CreateSessionRequest
	var rounds []int
	families := []string{"pd", "congestion", "braess", "coordination-n", "minority", "publicgoods-punish", "firstprice", "secondprice"}
	deviants := []string{"", "commitment-cheat", "", "freerider", ""}
	// 168 pure sessions over every catalog family.
	for i := 0; i < 168; i++ {
		req := ga.CreateSessionRequest{
			ID:      fmt.Sprintf("pure-%03d", i),
			Game:    families[i%len(families)],
			Players: 3 + i%3,
			Seed:    uint64(1000 + i),
			Punishment: &ga.PunishmentSpec{
				Scheme: []string{"disconnect", "reputation"}[i%2],
			},
		}
		if d := deviants[i%len(deviants)]; d != "" {
			req.Deviant = &ga.DeviantSpec{Player: 0, Strategy: d}
		}
		if i%4 == 0 {
			req.HistoryLimit = 3 // exercise bounded rings across the crash
		}
		specs = append(specs, req)
		rounds = append(rounds, 2+i%6)
	}
	// 16 mixed sessions with per-round auditing.
	for i := 0; i < 16; i++ {
		specs = append(specs, ga.CreateSessionRequest{
			ID:   fmt.Sprintf("mixed-%02d", i),
			Game: "matchingpennies",
			Kind: "mixed", Audit: "per-round",
			Seed: uint64(2000 + i),
		})
		rounds = append(rounds, 3+i%4)
	}
	// 12 RRA sessions.
	for i := 0; i < 12; i++ {
		req := ga.CreateSessionRequest{
			ID:         fmt.Sprintf("rra-%02d", i),
			Seed:       uint64(3000 + i),
			Punishment: &ga.PunishmentSpec{Scheme: "disconnect"},
		}
		req.RRA = &struct {
			Agents    int `json:"agents"`
			Resources int `json:"resources"`
		}{Agents: 4 + i%4, Resources: 2}
		specs = append(specs, req)
		rounds = append(rounds, 2+i%5)
	}
	// 8 distributed sessions (the heavy driver: few plays each).
	for i := 0; i < 8; i++ {
		req := ga.CreateSessionRequest{
			ID:          fmt.Sprintf("dist-%02d", i),
			Game:        "publicgoods",
			Players:     4,
			Seed:        uint64(4000 + i),
			PulseBudget: 1000 * ga.PulsesPerPlay(1),
		}
		req.Distributed = &struct {
			N int `json:"n"`
			F int `json:"f"`
		}{N: 4, F: 1}
		specs = append(specs, req)
		rounds = append(rounds, 1+i%2)
	}
	return specs, rounds
}

// TestCrashRecovery200Sessions is the acceptance criterion: kill an
// authority with ≥ 200 live sessions across all four drivers, Recover()
// restores every one from the file store, and subsequent plays match an
// uninterrupted seeded twin hash-for-hash.
func TestCrashRecovery200Sessions(t *testing.T) {
	ctx := context.Background()
	specs, rounds := crashSpecs()
	if len(specs) < 200 {
		t.Fatalf("fleet has %d sessions, want ≥ 200", len(specs))
	}

	st, err := ga.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	victim := ga.NewAuthority(ga.WithStore(st), ga.WithSnapshotEvery(4))

	// Create and play the fleet concurrently — the crash lands mid-flight
	// on a loaded host, exactly the scenario the WAL exists for.
	var wg sync.WaitGroup
	errCh := make(chan error, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(spec ga.CreateSessionRequest, plays int) {
			defer wg.Done()
			h, err := victim.CreateFromSpec(spec)
			if err != nil {
				errCh <- fmt.Errorf("create %s: %w", spec.ID, err)
				return
			}
			if _, err := h.Run(ctx, plays); err != nil {
				errCh <- fmt.Errorf("play %s: %w", spec.ID, err)
			}
		}(spec, rounds[i])
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if victim.Len() != len(specs) {
		t.Fatalf("victim hosts %d sessions, want %d", victim.Len(), len(specs))
	}

	// SIGKILL: detach the store un-synced and abandon the authority. The
	// corpse is closed only after recovery (resource hygiene; the detach
	// guarantees it cannot touch the ledger).
	detached := victim.DetachStore()
	defer victim.Close()

	recovered := ga.NewAuthority(ga.WithStore(detached))
	report, err := recovered.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Failed) > 0 {
		t.Fatalf("recovery failed for %d sessions, first: %s", len(report.Failed), report.Failed[0])
	}
	if report.Sessions != len(specs) {
		t.Fatalf("recovered %d sessions, want %d", report.Sessions, len(specs))
	}
	t.Logf("recovered %d sessions, %d plays replayed in %v", report.Sessions, report.Rounds, report.Elapsed)

	// Every recovered session's future must match its uninterrupted twin
	// hash-for-hash.
	const k = 3
	for i, spec := range specs {
		wg.Add(1)
		go func(spec ga.CreateSessionRequest, plays int) {
			defer wg.Done()
			h, err := recovered.Get(spec.ID)
			if err != nil {
				errCh <- err
				return
			}
			if got := h.Stats().Rounds; got != plays {
				errCh <- fmt.Errorf("%s: recovered at round %d, want %d", spec.ID, got, plays)
				return
			}
			spec.ID = "" // twins host under fresh auto ids on a throwaway volatile host
			twinHost := ga.NewAuthority()
			defer twinHost.Close()
			twin, err := twinHost.CreateFromSpec(spec)
			if err != nil {
				errCh <- fmt.Errorf("twin %s: %w", spec.ID, err)
				return
			}
			if _, err := twin.Run(ctx, plays); err != nil {
				errCh <- err
				return
			}
			for r := 0; r < k; r++ {
				want, err := twin.Play(ctx)
				if err != nil {
					errCh <- err
					return
				}
				got, err := h.Play(ctx)
				if err != nil {
					errCh <- err
					return
				}
				if wh, gh := core.HashResult(want), core.HashResult(got); wh != gh {
					errCh <- fmt.Errorf("%s: post-recovery play %d hash %s, twin %s", h.ID(), r, gh, wh)
					return
				}
			}
			if w, g := twin.Snapshot().Digest, h.Snapshot().Digest; w != g {
				errCh <- fmt.Errorf("%s: final digest diverged from twin", h.ID())
			}
		}(spec, rounds[i])
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if err := recovered.Close(); err != nil {
		t.Fatal(err)
	}
}
