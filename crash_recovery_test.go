package gameauthority_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	ga "gameauthority"
	"gameauthority/internal/core"
)

// crashSpecs builds the ≥ 200-session fleet for the crash-recovery
// acceptance test: every driver represented, punishment and deviants in
// the mix, rounds varying per session so WAL tails of every length are
// replayed.
func crashSpecs() ([]ga.CreateSessionRequest, []int) {
	var specs []ga.CreateSessionRequest
	var rounds []int
	families := []string{"pd", "congestion", "braess", "coordination-n", "minority", "publicgoods-punish", "firstprice", "secondprice"}
	deviants := []string{"", "commitment-cheat", "", "freerider", ""}
	// 168 pure sessions over every catalog family.
	for i := 0; i < 168; i++ {
		req := ga.CreateSessionRequest{
			ID:      fmt.Sprintf("pure-%03d", i),
			Game:    families[i%len(families)],
			Players: 3 + i%3,
			Seed:    uint64(1000 + i),
			Punishment: &ga.PunishmentSpec{
				Scheme: []string{"disconnect", "reputation"}[i%2],
			},
		}
		if d := deviants[i%len(deviants)]; d != "" {
			req.Deviant = &ga.DeviantSpec{Player: 0, Strategy: d}
		}
		if i%4 == 0 {
			req.HistoryLimit = 3 // exercise bounded rings across the crash
		}
		specs = append(specs, req)
		rounds = append(rounds, 2+i%6)
	}
	// 16 mixed sessions with per-round auditing.
	for i := 0; i < 16; i++ {
		specs = append(specs, ga.CreateSessionRequest{
			ID:   fmt.Sprintf("mixed-%02d", i),
			Game: "matchingpennies",
			Kind: "mixed", Audit: "per-round",
			Seed: uint64(2000 + i),
		})
		rounds = append(rounds, 3+i%4)
	}
	// 12 RRA sessions.
	for i := 0; i < 12; i++ {
		req := ga.CreateSessionRequest{
			ID:         fmt.Sprintf("rra-%02d", i),
			Seed:       uint64(3000 + i),
			Punishment: &ga.PunishmentSpec{Scheme: "disconnect"},
		}
		req.RRA = &struct {
			Agents    int `json:"agents"`
			Resources int `json:"resources"`
		}{Agents: 4 + i%4, Resources: 2}
		specs = append(specs, req)
		rounds = append(rounds, 2+i%5)
	}
	// 8 distributed sessions (the heavy driver: few plays each).
	for i := 0; i < 8; i++ {
		req := ga.CreateSessionRequest{
			ID:          fmt.Sprintf("dist-%02d", i),
			Game:        "publicgoods",
			Players:     4,
			Seed:        uint64(4000 + i),
			PulseBudget: 1000 * ga.PulsesPerPlay(1),
		}
		req.Distributed = &struct {
			N int `json:"n"`
			F int `json:"f"`
		}{N: 4, F: 1}
		specs = append(specs, req)
		rounds = append(rounds, 1+i%2)
	}
	return specs, rounds
}

// TestCrashRecovery200Sessions is the acceptance criterion: kill an
// authority with ≥ 200 live sessions across all four drivers, Recover()
// restores every one from the file store, and subsequent plays match an
// uninterrupted seeded twin hash-for-hash.
func TestCrashRecovery200Sessions(t *testing.T) {
	ctx := context.Background()
	specs, rounds := crashSpecs()
	if len(specs) < 200 {
		t.Fatalf("fleet has %d sessions, want ≥ 200", len(specs))
	}

	st, err := ga.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	victim := ga.NewAuthority(ga.WithStore(st), ga.WithSnapshotEvery(4))

	// Create and play the fleet concurrently — the crash lands mid-flight
	// on a loaded host, exactly the scenario the WAL exists for.
	var wg sync.WaitGroup
	errCh := make(chan error, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(spec ga.CreateSessionRequest, plays int) {
			defer wg.Done()
			h, err := victim.CreateFromSpec(spec)
			if err != nil {
				errCh <- fmt.Errorf("create %s: %w", spec.ID, err)
				return
			}
			if _, err := h.Run(ctx, plays); err != nil {
				errCh <- fmt.Errorf("play %s: %w", spec.ID, err)
			}
		}(spec, rounds[i])
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if victim.Len() != len(specs) {
		t.Fatalf("victim hosts %d sessions, want %d", victim.Len(), len(specs))
	}

	// SIGKILL: detach the store un-synced and abandon the authority. The
	// corpse is closed only after recovery (resource hygiene; the detach
	// guarantees it cannot touch the ledger).
	detached := victim.DetachStore()
	defer victim.Close()

	recovered := ga.NewAuthority(ga.WithStore(detached))
	report, err := recovered.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Failed) > 0 {
		t.Fatalf("recovery failed for %d sessions, first: %s", len(report.Failed), report.Failed[0])
	}
	if report.Sessions != len(specs) {
		t.Fatalf("recovered %d sessions, want %d", report.Sessions, len(specs))
	}
	t.Logf("recovered %d sessions, %d plays replayed in %v", report.Sessions, report.Rounds, report.Elapsed)

	// Every recovered session's future must match its uninterrupted twin
	// hash-for-hash.
	const k = 3
	for i, spec := range specs {
		wg.Add(1)
		go func(spec ga.CreateSessionRequest, plays int) {
			defer wg.Done()
			h, err := recovered.Get(spec.ID)
			if err != nil {
				errCh <- err
				return
			}
			if got := h.Stats().Rounds; got != plays {
				errCh <- fmt.Errorf("%s: recovered at round %d, want %d", spec.ID, got, plays)
				return
			}
			spec.ID = "" // twins host under fresh auto ids on a throwaway volatile host
			twinHost := ga.NewAuthority()
			defer twinHost.Close()
			twin, err := twinHost.CreateFromSpec(spec)
			if err != nil {
				errCh <- fmt.Errorf("twin %s: %w", spec.ID, err)
				return
			}
			if _, err := twin.Run(ctx, plays); err != nil {
				errCh <- err
				return
			}
			for r := 0; r < k; r++ {
				want, err := twin.Play(ctx)
				if err != nil {
					errCh <- err
					return
				}
				got, err := h.Play(ctx)
				if err != nil {
					errCh <- err
					return
				}
				if wh, gh := core.HashResult(want), core.HashResult(got); wh != gh {
					errCh <- fmt.Errorf("%s: post-recovery play %d hash %s, twin %s", h.ID(), r, gh, wh)
					return
				}
			}
			if w, g := twin.Snapshot().Digest, h.Snapshot().Digest; w != g {
				errCh <- fmt.Errorf("%s: final digest diverged from twin", h.ID())
			}
		}(spec, rounds[i])
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if err := recovered.Close(); err != nil {
		t.Fatal(err)
	}
}

// verifyAgainstTwin checks that a recovered session sits at wantRounds
// and that its future matches a fresh seeded twin advanced to the same
// round, hash-for-hash, ending digest-equal.
func verifyAgainstTwin(t *testing.T, h *ga.HostedSession, spec ga.CreateSessionRequest, wantRounds int) {
	t.Helper()
	ctx := context.Background()
	if got := h.Stats().Rounds; got != wantRounds {
		t.Fatalf("%s: recovered at round %d, want %d", h.ID(), got, wantRounds)
	}
	spec.ID = ""
	twinHost := ga.NewAuthority()
	defer twinHost.Close()
	twin, err := twinHost.CreateFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if wantRounds > 0 {
		if _, err := twin.Run(ctx, wantRounds); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 3; r++ {
		want, err := twin.Play(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.Play(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if wh, gh := core.HashResult(want), core.HashResult(got); wh != gh {
			t.Fatalf("%s: post-recovery play %d hash %s, twin %s", h.ID(), r, gh, wh)
		}
	}
	if w, g := twin.Snapshot().Digest, h.Snapshot().Digest; w != g {
		t.Fatalf("%s: final digest diverged from twin", h.ID())
	}
}

// TestCrashBetweenCommitEpochs kills (detaches the store from) an
// authority whose sessions are mid-flight through batched PlayN loops
// under group commit. Whatever the crash interleaves with, the disk must
// only ever hold whole batch records — every recovered session sits at a
// multiple of the batch size — and recovery replays all of them against
// a seeded twin without a single ErrRestore.
func TestCrashBetweenCommitEpochs(t *testing.T) {
	ctx := context.Background()
	const (
		sessions = 16
		batch    = 5
	)
	st, err := ga.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	victim := ga.NewAuthority(ga.WithStore(st),
		ga.WithGroupCommit(200*time.Microsecond, 1<<20),
		ga.WithSnapshotEvery(0)) // keep every batch in the WAL: the modulo assertion below needs the raw tail

	specs := make([]ga.CreateSessionRequest, sessions)
	var wg sync.WaitGroup
	var crashed atomic.Bool
	errCh := make(chan error, sessions)
	for i := range specs {
		specs[i] = ga.CreateSessionRequest{
			ID:         fmt.Sprintf("epoch-%02d", i),
			Game:       "pd",
			Seed:       uint64(9000 + i),
			Punishment: &ga.PunishmentSpec{Scheme: "disconnect"},
		}
		h, err := victim.CreateFromSpec(specs[i])
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(h *ga.HostedSession) {
			defer wg.Done()
			for {
				if _, err := h.PlayN(ctx, batch, nil); err != nil {
					// After the crash the store is gone mid-loop; any
					// other error is a real failure.
					if !crashed.Load() {
						errCh <- err
					}
					return
				}
				if crashed.Load() {
					return
				}
			}
		}(h)
	}
	time.Sleep(5 * time.Millisecond) // let the fleet land mid-batch
	detached := victim.DetachStore()
	crashed.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	defer victim.Close()

	recovered := ga.NewAuthority(ga.WithStore(detached), ga.WithSnapshotEvery(0))
	report, err := recovered.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if len(report.Failed) > 0 {
		t.Fatalf("recovery failed for %d sessions, first: %s", len(report.Failed), report.Failed[0])
	}
	if report.Sessions != sessions {
		t.Fatalf("recovered %d sessions, want %d", report.Sessions, sessions)
	}
	for _, spec := range specs {
		h, err := recovered.Get(spec.ID)
		if err != nil {
			t.Fatal(err)
		}
		rounds := h.Stats().Rounds
		if rounds%batch != 0 {
			t.Fatalf("%s: recovered at round %d — not a whole number of %d-round batches", spec.ID, rounds, batch)
		}
		verifyAgainstTwin(t, h, spec, rounds)
	}
}

// TestCrashInsideBatchAppend tears the WAL tail inside a batch record by
// direct file surgery — the on-disk image of a crash mid-append — and
// checks repairWAL's whole-batch-or-none contract: a newline-clipped but
// otherwise complete final record is repaired and fully replayed, while
// a mid-record tear rolls the session back to the previous whole batch.
// Neither case may surface ErrRestore.
func TestCrashInsideBatchAppend(t *testing.T) {
	const batch = 4
	cases := []struct {
		name       string
		truncate   int // bytes clipped off the WAL tail
		wantRounds int
	}{
		// Only the trailing newline is missing; the final batch record is
		// intact and must be repaired and replayed whole.
		{"newline-clipped", 1, 3 * batch},
		// The tear lands inside the last batch record; the whole batch
		// must vanish, never a prefix of its plays.
		{"mid-record", 10, 2 * batch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			dir := t.TempDir()
			st, err := ga.NewFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			spec := ga.CreateSessionRequest{
				ID:         "torn",
				Game:       "congestion",
				Players:    4,
				Seed:       77,
				Punishment: &ga.PunishmentSpec{Scheme: "reputation"},
			}
			a := ga.NewAuthority(ga.WithStore(st), ga.WithSnapshotEvery(0))
			h, err := a.CreateFromSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if _, err := h.PlayN(ctx, batch, nil); err != nil {
					t.Fatal(err)
				}
			}
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}

			wal := filepath.Join(dir, "sessions", spec.ID+".wal")
			info, err := os.Stat(wal)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(wal, info.Size()-int64(tc.truncate)); err != nil {
				t.Fatal(err)
			}

			st2, err := ga.NewFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			recovered := ga.NewAuthority(ga.WithStore(st2), ga.WithSnapshotEvery(0))
			defer recovered.Close()
			report, err := recovered.Recover(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(report.Failed) > 0 {
				t.Fatalf("recovery failed: %v", report.Failed)
			}
			h2, err := recovered.Get(spec.ID)
			if err != nil {
				t.Fatal(err)
			}
			verifyAgainstTwin(t, h2, spec, tc.wantRounds)
		})
	}
}

// TestBatchAppendFaults drives PlayN against a store whose appends fail
// on a deterministic plan, covering both batch failure modes as units:
// a clean AppendFail journals none of the batch's plays (the session
// recovers at the last acknowledged batch), and a torn AppendTorn — the
// ack lost after a durable apply — journals all of them, so recovery
// lands ahead of what the caller saw acknowledged. In both worlds the
// disk holds whole batches only.
func TestBatchAppendFaults(t *testing.T) {
	const batch = 6
	cases := []struct {
		name       string
		cfg        ga.FaultConfig
		wantRounds int
	}{
		// Every append fails cleanly: three batches play in memory, zero
		// reach the WAL.
		{"append-fail", ga.FaultConfig{Seed: 1, AppendFail: 1}, 0},
		// Every append applies durably but loses its ack: all three
		// batches reach the WAL even though every PlayN reported failure.
		{"append-torn", ga.FaultConfig{Seed: 1, AppendTorn: 1}, 3 * batch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			st, err := ga.NewFileStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			spec := ga.CreateSessionRequest{
				ID:         "faulty",
				Game:       "minority",
				Players:    5,
				Seed:       42,
				Punishment: &ga.PunishmentSpec{Scheme: "disconnect"},
			}
			victim := ga.NewAuthority(ga.WithStore(st),
				ga.WithFaultPlan(ga.NewFaultPlan(tc.cfg)),
				ga.WithSnapshotEvery(0),
				ga.WithBreaker(-1, 0)) // no breaker: every batch must reach the store and eat its fault
			h, err := victim.CreateFromSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				_, err := h.PlayN(ctx, batch, nil)
				if !errors.Is(err, ga.ErrDurability) || !errors.Is(err, ga.ErrFaultInjected) {
					t.Fatalf("batch %d: error %v, want ErrDurability wrapping ErrFaultInjected", i, err)
				}
			}
			if got := h.Stats().Rounds; got != 3*batch {
				t.Fatalf("in-memory session at round %d, want %d", got, 3*batch)
			}
			// Crash the victim, but recover against the raw store: the
			// detached handle is the fault-wrapped decorator, which would
			// keep injecting append failures into the recovered world.
			victim.DetachStore()
			defer victim.Close()

			recovered := ga.NewAuthority(ga.WithStore(st), ga.WithSnapshotEvery(0))
			defer recovered.Close()
			report, err := recovered.Recover(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(report.Failed) > 0 {
				t.Fatalf("recovery failed: %v", report.Failed)
			}
			h2, err := recovered.Get(spec.ID)
			if err != nil {
				t.Fatal(err)
			}
			verifyAgainstTwin(t, h2, spec, tc.wantRounds)
		})
	}
}
