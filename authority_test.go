package gameauthority_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	ga "gameauthority"
)

func TestAuthorityRegistry(t *testing.T) {
	a := ga.NewAuthority()

	h1, err := a.Create("alpha", ga.PrisonersDilemma(), ga.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if h1.ID() != "alpha" {
		t.Fatalf("id = %q", h1.ID())
	}
	if _, err := a.Create("alpha", ga.PrisonersDilemma()); !errors.Is(err, ga.ErrSessionExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	for _, bad := range []string{"a/b", "a b", "é", ".", "..", string(make([]byte, 65))} {
		if _, err := a.Create(bad, ga.PrisonersDilemma()); !errors.Is(err, ga.ErrSessionID) {
			t.Fatalf("Create(%q): %v, want ErrSessionID", bad, err)
		}
	}

	h2, err := a.Create("", ga.MatchingPennies(),
		ga.WithStrategies(uniform2),
		ga.WithPunishment(ga.NewDisconnectScheme(2, 0)),
		ga.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if h2.ID() == "" {
		t.Fatal("auto-assigned id is empty")
	}

	if got, err := a.Get("alpha"); err != nil || got != h1 {
		t.Fatalf("Get(alpha) = %v, %v", got, err)
	}
	if _, err := a.Get("ghost"); !errors.Is(err, ga.ErrSessionNotFound) {
		t.Fatalf("Get(ghost): %v", err)
	}
	if n := a.Len(); n != 2 {
		t.Fatalf("Len = %d", n)
	}
	if list := a.Sessions(); len(list) != 2 || list[0].ID() != "alpha" {
		t.Fatalf("Sessions = %v", list)
	}

	if err := a.Remove("alpha"); err != nil {
		t.Fatal(err)
	}
	if err := a.Remove("alpha"); !errors.Is(err, ga.ErrSessionNotFound) {
		t.Fatalf("double remove: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if n := a.Len(); n != 0 {
		t.Fatalf("Len after Close = %d", n)
	}
}

// TestAuthorityConcurrentSessions hosts many independent sessions and
// plays them all concurrently — each session additionally from several
// goroutines — while readers walk the registry. Meant to run under
// `go test -race`.
func TestAuthorityConcurrentSessions(t *testing.T) {
	const (
		sessions       = 8
		playersPerSess = 3
		playsEach      = 20
	)
	a := ga.NewAuthority()
	for i := 0; i < sessions; i++ {
		var err error
		if i%2 == 0 {
			_, err = a.Create(fmt.Sprintf("pure-%d", i), ga.PrisonersDilemma(), ga.WithSeed(uint64(i)))
		} else {
			_, err = a.Create(fmt.Sprintf("mixed-%d", i), ga.MatchingPennies(),
				ga.WithStrategies(uniform2),
				ga.WithPunishment(ga.NewDisconnectScheme(2, 0)),
				ga.WithSeed(uint64(i)))
		}
		if err != nil {
			t.Fatal(err)
		}
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, sessions*playersPerSess+1)
	for _, h := range a.Sessions() {
		// A session subscriber racing with the players.
		unsubscribe := h.Subscribe(ga.ObserverFunc(func(ga.Event) {}))
		defer unsubscribe()
		for p := 0; p < playersPerSess; p++ {
			wg.Add(1)
			go func(s ga.Session) {
				defer wg.Done()
				for r := 0; r < playsEach; r++ {
					if _, err := s.Play(ctx); err != nil {
						errs <- err
						return
					}
					_ = s.Stats()
				}
			}(h)
		}
	}
	// A registry reader racing with the players.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			for _, h := range a.Sessions() {
				_ = h.Stats()
				_ = h.Results()
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for _, h := range a.Sessions() {
		if got := h.Stats().Rounds; got != playersPerSess*playsEach {
			t.Fatalf("session %s completed %d rounds, want %d", h.ID(), got, playersPerSess*playsEach)
		}
	}
}
