GO ?= go

.PHONY: ci fmt fmt-fix vet build test race bench bench-smoke

ci: fmt vet build test race bench-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt-fix:
	gofmt -w .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: a bit-rot smoke, not a measurement. CI runs
# this — it fails on build/bench errors, never on timing noise.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The tracked baseline: per-driver play benchmarks with -benchmem, parsed
# into BENCH_PR2.json (ns/play, B/play, allocs/play per driver). Commit the
# artifact so future PRs have a trajectory to beat.
bench:
	$(GO) test -run '^$$' -bench '^BenchmarkPlay' -benchmem -benchtime 2000x -count 1 . \
		| $(GO) run ./cmd/benchfmt -out BENCH_PR2.json
