GO ?= go

.PHONY: ci fmt fmt-fix vet build test race bench bench-smoke \
	loadgen loadgen-chaos loadgen-smoke docs-check fuzz-smoke \
	deviation-matrix deviation-matrix-short cover-gate \
	crash-bench crash-smoke ws-smoke loadgen-ws chaos-bench chaos-smoke \
	batch-bench batch-smoke dist-bench dist-smoke obs-bench obs-smoke clean

ci: fmt vet build test race bench-smoke loadgen-smoke crash-smoke \
	ws-smoke chaos-smoke batch-smoke dist-smoke obs-smoke docs-check fuzz-smoke deviation-matrix-short cover-gate

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt-fix:
	gofmt -w .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: a bit-rot smoke, not a measurement. CI runs
# this — it fails on build/bench errors, never on timing noise.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The tracked baseline: per-driver play benchmarks with -benchmem, parsed
# into BENCH_PR2.json (ns/play, B/play, allocs/play per driver). Commit the
# artifact so future PRs have a trajectory to beat.
bench:
	$(GO) test -run '^$$' -bench '^BenchmarkPlay' -benchmem -benchtime 2000x -count 1 . \
		| $(GO) run ./cmd/benchfmt -out BENCH_PR2.json

# The many-session load harness: 1000 concurrent sessions across the full
# scenario mix and all four drivers, both in-process and (selfserve) over
# HTTP; the in-process run is the tracked BENCH_PR3.json artifact. See
# DESIGN.md §7 for how to read it.
loadgen:
	( $(GO) run ./cmd/loadgen -sessions 1000 -plays 20; \
	  $(GO) run ./cmd/loadgen -sessions 200 -plays 8 -obs ) \
		| $(GO) run ./cmd/benchfmt -command "make loadgen" -out BENCH_PR3.json

# The chaos run: the same 1000 sessions with 20% deviant sessions
# (strategies rotating through the deviation catalog) and wire-level
# adversaries on distributed sessions; the artifact tracks throughput
# under attack plus detection/conviction rates. See DESIGN.md §8.
loadgen-chaos:
	$(GO) run ./cmd/loadgen -sessions 1000 -plays 20 -deviants 0.2 -chaos \
		| $(GO) run ./cmd/benchfmt -command "make loadgen-chaos" -out BENCH_PR4.json

# CI-sized loadgen: exercises every scenario, every driver, and both
# transports; fails on harness errors, never on timing.
loadgen-smoke:
	$(GO) run ./cmd/loadgen -sessions 64 -plays 4 > /dev/null
	$(GO) run ./cmd/loadgen -selfserve -sessions 16 -plays 2 > /dev/null
	$(GO) run ./cmd/loadgen -sessions 64 -plays 4 -deviants 0.25 -chaos > /dev/null

# CI-sized streaming smoke: the full scenario mix over the /ws binary
# transport, many sessions multiplexed onto four connections; fails on
# any transport error, never on timing.
ws-smoke:
	$(GO) run ./cmd/loadgen -transport ws -selfserve -sessions 64 -plays 4 -conns 4 > /dev/null

# The streaming-scale run (DESIGN.md §10): 100k concurrent sessions
# multiplexed over 64 WebSocket connections into a sharded authority; the
# tracked BENCH_PR6.json artifact records the WS-vs-HTTP throughput and
# latency split.
loadgen-ws:
	$(GO) run ./cmd/loadgen -transport ws -selfserve -sessions 100000 -plays 4 -conns 64 \
		| $(GO) run ./cmd/benchfmt -command "make loadgen-ws" -out BENCH_PR6.json

# The fault-injection acceptance harness (DESIGN.md §11): deterministic
# disk and network chaos around the streaming transport, with self-healing
# clients. Each run asserts zero verdict loss and digest-identical final
# state against a fault-free twin; the tracked BENCH_PR7.json artifact
# records throughput and healing counters at 0%, 5%, and 20% fault rates.
chaos-bench:
	( $(GO) run ./cmd/loadgen -sessions 48 -plays 8 -conns 4 -seed 1 -chaos-disk 0 -chaos-net 0; \
	  $(GO) run ./cmd/loadgen -sessions 48 -plays 8 -conns 4 -seed 1 -chaos-disk 0.05 -chaos-net 0.05; \
	  $(GO) run ./cmd/loadgen -sessions 48 -plays 8 -conns 4 -seed 1 -chaos-disk 0.2 -chaos-net 0.2 ) \
		| $(GO) run ./cmd/benchfmt -command "make chaos-bench" -out BENCH_PR7.json

# CI-sized chaos smoke: one run at a 5% disk + 5% net fault rate; fails
# on any verdict loss, digest mismatch, or unhealed connection, never on
# timing.
chaos-smoke:
	$(GO) run ./cmd/loadgen -sessions 24 -plays 6 -conns 4 -seed 1 -chaos-disk 0.05 -chaos-net 0.05 > /dev/null
	$(GO) run ./cmd/loadgen -sessions 24 -plays 6 -conns 4 -seed 1 -chaos-disk 0.2 -chaos-net 0 -batch 3 > /dev/null

# The durability-tax benchmark (DESIGN.md §12): the same 300-session
# scenario mix volatile, durable with batched plays + WAL group commit at
# an equal shape, and durable through a crash/recover cycle. The tracked
# BENCH_PR8.json artifact asserts the headline: durable batched throughput
# stays within 2x of the volatile baseline.
batch-bench:
	@dir=$$(mktemp -d); \
	( $(GO) run ./cmd/loadgen -sessions 300 -plays 24 -seed 1; \
	  $(GO) run ./cmd/loadgen -sessions 300 -plays 24 -batch 24 -data-dir $$dir -seed 1; \
	  $(GO) run ./cmd/loadgen -sessions 300 -plays 12 -batch 6 -crash 1 -seed 1 ) \
		| $(GO) run ./cmd/benchfmt -command "make batch-bench" -out BENCH_PR8.json; \
	status=$$?; rm -rf $$dir; exit $$status

# CI-sized batch smoke: the PlayN equivalence battery (every catalog game
# x four drivers x Mem/File stores), crash-mid-batch recovery, the fsync
# regression gate, and a batched durable loadgen run crossing one
# crash/recover cycle. Fails on any divergence, never on timing.
batch-smoke:
	$(GO) test -run 'TestPlayNEquivalence|TestCrashBetweenCommitEpochs|TestCrashInsideBatchAppend|TestBatchAppendFaults|TestGroupCommitFsyncGate' .
	$(GO) test -run 'TestBatchRecordRoundTrip|TestFileTornBatchTail|TestGroupCommitEpochs|TestGroupCommitCloseReleasesParked' ./internal/store
	$(GO) run ./cmd/loadgen -sessions 32 -plays 8 -batch 4 -crash 1 > /dev/null

# The distributed-only scenario mix: the Byzantine families (fork-choice
# mining, committee attestation) plus the public-goods baseline on the
# replicated driver, everything else zeroed out.
DIST_MIX = congestion=0,braess=0,coordination-n=0,publicgoods-punish=0,minority=0,firstprice=0,secondprice=0,pd=0,mixed-pennies=0,rra=0,dist-publicgoods=1,dist-mining=1,dist-committee=1

# CI-sized distributed smoke (DESIGN.md §13): the hard per-pulse allocation
# gates (a warm interactive-consistency phase must not allocate; the
# distributed play budget is pinned at measured+10%), cross-driver
# determinism, and short Byzantine scenario rows through both pulse
# engines. Fails on allocation or agreement regressions, never on timing.
dist-smoke:
	$(GO) test -run 'TestICEngine|TestDolevStrong' ./internal/bap
	$(GO) test -run 'TestAllocsPerPlayDistributed|TestCrossDriverDeterminism' .
	$(GO) run ./cmd/loadgen -sessions 12 -plays 8 -seed 1 -mix "$(DIST_MIX)" > /dev/null
	$(GO) run ./cmd/loadgen -sessions 12 -plays 8 -seed 1 -pulse-workers 2 -mix "$(DIST_MIX)" > /dev/null

# The distributed-pulse benchmark (DESIGN.md §13): the Byzantine scenario
# rows at an equal shape on the lockstep engine and on the worker-pool
# engine under GOMAXPROCS=4. The tracked BENCH_PR9.json artifact keeps the
# single- and multi-core rows distinct via the /pulse-workers label; on a
# single-hardware-core host the worker-pool row measures its scheduling
# overhead honestly rather than a speedup.
dist-bench:
	( $(GO) run ./cmd/loadgen -sessions 24 -plays 16 -seed 1 -mix "$(DIST_MIX)"; \
	  GOMAXPROCS=4 $(GO) run ./cmd/loadgen -sessions 24 -plays 16 -seed 1 -pulse-workers 4 -mix "$(DIST_MIX)" ) \
		| $(GO) run ./cmd/benchfmt -command "make dist-bench" -out BENCH_PR9.json

# The observability-overhead benchmark (DESIGN.md §14): the dist-bench
# Byzantine rows re-run with the full metrics plane compiled in and
# tracing disabled, plus an /obs row carrying the server-side histogram
# percentiles next to the client-side numbers. The tracked
# BENCH_PR10.json artifact is read against BENCH_PR9.json: equal-shape
# rows must stay within 5% plays/s.
obs-bench:
	( $(GO) run ./cmd/loadgen -sessions 24 -plays 16 -seed 1 -mix "$(DIST_MIX)"; \
	  $(GO) run ./cmd/loadgen -sessions 24 -plays 16 -seed 1 -obs -mix "$(DIST_MIX)" ) \
		| $(GO) run ./cmd/benchfmt -command "make obs-bench" -out BENCH_PR10.json

# CI-sized observability smoke (DESIGN.md §14): obssmoke scrapes
# /metrics under real load and asserts every histogram and gauge family
# renders, parses, and is internally consistent, then captures one
# distributed-play trace and validates its per-pulse spans; metriclint
# enforces the gameauthority_ prefix and the _total/_seconds suffix
# conventions on every declared family. Fails on violations, never on
# timing.
obs-smoke:
	$(GO) run ./cmd/obssmoke
	$(GO) run ./cmd/metriclint

# The crash/recovery harness (DESIGN.md §9): a durable loadgen run that
# SIGKILL-drops the authority mid-run and recovers every session from the
# write-ahead log, twice. The artifact tracks durable throughput plus the
# recovered-session count and replay lag per cycle.
crash-bench:
	$(GO) run ./cmd/loadgen -sessions 300 -plays 12 -crash 2 \
		| $(GO) run ./cmd/benchfmt -command "make crash-bench" -out BENCH_PR5.json

# CI-sized crash smoke: every scenario family and driver crosses one
# crash/recover cycle; fails on any lost or diverging session, never on
# timing.
crash-smoke:
	$(GO) run ./cmd/loadgen -sessions 48 -plays 4 -crash 1 > /dev/null

# The deviation-profit verification matrix (DESIGN.md §8): every catalog
# game × driver × punishment scheme × selfish strategy, with the profit
# auditor asserting that punished deviation never nets positive utility.
# The short variant runs the same cells at reduced rounds/seeds on every
# push.
deviation-matrix:
	$(GO) test -run TestDeviationMatrix -v .

deviation-matrix-short:
	$(GO) test -run TestDeviationMatrix -short .

# Fuzz smoke: replay the checked-in seed corpora, then give each HTTP
# fuzz target a short live burst. Fails on panics/regressions, never on
# not finding anything new.
fuzz-smoke:
	$(GO) test -run '^Fuzz' .
	$(GO) test -run '^Fuzz' ./internal/wire
	$(GO) test -fuzz '^FuzzServerSessions$$' -fuzztime 5s -run '^Fuzz' .
	$(GO) test -fuzz '^FuzzServerPlay$$' -fuzztime 5s -run '^Fuzz' .
	$(GO) test -fuzz '^FuzzWireDecode$$' -fuzztime 5s -run '^Fuzz' ./internal/wire

# Coverage gate: the audited packages must keep ≥ 70% of statements
# covered by the whole suite (merged -coverpkg profile; see
# cmd/covergate). The profile lives in a temp file so repeated local runs
# leave no cover.out litter in the work tree.
COVER_PKGS = ./internal/core,./internal/punish,./internal/audit,./internal/deviate,./internal/store,./internal/wire,./internal/hub,./internal/faults,./internal/sim,./internal/bap,./internal/obs
cover-gate:
	@profile=$$(mktemp); \
	$(GO) test -short -coverprofile=$$profile -coverpkg=$(COVER_PKGS) ./... > /dev/null && \
	$(GO) run ./cmd/covergate -profile $$profile -min 70 \
		gameauthority/internal/core gameauthority/internal/punish \
		gameauthority/internal/audit gameauthority/internal/deviate \
		gameauthority/internal/store gameauthority/internal/wire \
		gameauthority/internal/hub gameauthority/internal/faults \
		gameauthority/internal/sim gameauthority/internal/bap \
		gameauthority/internal/obs; \
	status=$$?; rm -f $$profile; exit $$status

# Remove generated local artifacts (coverage profiles, build cache junk).
clean:
	rm -f cover.out
	$(GO) clean ./...

# Every internal package must carry a package comment (the godoc story of
# DESIGN.md §1); CI fails when one goes missing.
docs-check:
	@missing=0; for d in internal/*/; do \
		grep -q '^// Package ' $$d*.go || { echo "docs-check: $$d lacks a package comment"; missing=1; }; \
	done; \
	if [ $$missing -ne 0 ]; then exit 1; fi; \
	echo "docs-check: every internal package carries a package comment"
