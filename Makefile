GO ?= go

.PHONY: ci fmt fmt-fix vet build test race bench bench-smoke \
	loadgen loadgen-smoke docs-check

ci: fmt vet build test race bench-smoke loadgen-smoke docs-check

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt-fix:
	gofmt -w .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: a bit-rot smoke, not a measurement. CI runs
# this — it fails on build/bench errors, never on timing noise.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The tracked baseline: per-driver play benchmarks with -benchmem, parsed
# into BENCH_PR2.json (ns/play, B/play, allocs/play per driver). Commit the
# artifact so future PRs have a trajectory to beat.
bench:
	$(GO) test -run '^$$' -bench '^BenchmarkPlay' -benchmem -benchtime 2000x -count 1 . \
		| $(GO) run ./cmd/benchfmt -out BENCH_PR2.json

# The many-session load harness: 1000 concurrent sessions across the full
# scenario mix and all four drivers, both in-process and (selfserve) over
# HTTP; the in-process run is the tracked BENCH_PR3.json artifact. See
# DESIGN.md §7 for how to read it.
loadgen:
	$(GO) run ./cmd/loadgen -sessions 1000 -plays 20 \
		| $(GO) run ./cmd/benchfmt -command "make loadgen" -out BENCH_PR3.json

# CI-sized loadgen: exercises every scenario, every driver, and both
# transports; fails on harness errors, never on timing.
loadgen-smoke:
	$(GO) run ./cmd/loadgen -sessions 64 -plays 4 > /dev/null
	$(GO) run ./cmd/loadgen -selfserve -sessions 16 -plays 2 > /dev/null

# Every internal package must carry a package comment (the godoc story of
# DESIGN.md §1); CI fails when one goes missing.
docs-check:
	@missing=0; for d in internal/*/; do \
		grep -q '^// Package ' $$d*.go || { echo "docs-check: $$d lacks a package comment"; missing=1; }; \
	done; \
	if [ $$missing -ne 0 ]; then exit 1; fi; \
	echo "docs-check: every internal package carries a package comment"
