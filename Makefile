GO ?= go

.PHONY: ci fmt fmt-fix vet build test race bench

ci: fmt vet build test race bench

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt-fix:
	gofmt -w .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: a bit-rot smoke, not a measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
